#include "sim/machine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "ckpt/archive.hpp"
#include "ckpt/state_io.hpp"
#include "telemetry/live.hpp"
#include "telemetry/registry.hpp"
#include "util/stop.hpp"

namespace dike::sim {

namespace {
constexpr double kEps = 1e-9;

/// Largest number of ticks a quantity growing by `rate` per tick can safely
/// advance while provably staying below `room`, under per-tick floating-point
/// accumulation. Conservative: the margin absorbs worst-case rounding drift
/// of the repeated additions (relative 1e-7 covers horizons up to ~4e8
/// ticks, far beyond any run limit); undershooting only means a few extra
/// per-tick steps near the event, never a missed event.
[[nodiscard]] util::Tick ticksBelow(double room, double rate) {
  if (!(room > rate)) return 0;
  const double est = room / rate;
  if (est >= 1e8) return static_cast<util::Tick>(1e8);
  const auto margin = static_cast<util::Tick>(3.0 + est * 1e-7);
  const auto whole = static_cast<util::Tick>(est);
  return whole > margin ? whole - margin : 0;
}

/// Bitwise equality of two demand vectors (the arbitration memo key).
/// Bit-level comparison, not operator==: distinguishing -0.0 from 0.0 (and
/// never equating NaNs) is what makes "equal demands" imply "bit-identical
/// arbitration output".
[[nodiscard]] bool sameDemands(const std::vector<MemoryDemand>& a,
                               const std::vector<MemoryDemand>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].socket != b[i].socket ||
        std::bit_cast<std::uint64_t>(a[i].accesses) !=
            std::bit_cast<std::uint64_t>(b[i].accesses))
      return false;
  }
  return true;
}
}  // namespace

Machine::Machine(MachineTopology topology, MachineConfig config)
    : topology_(std::move(topology)),
      config_(config),
      rng_(config.seed),
      coreToThread_(static_cast<std::size_t>(topology_.coreCount()), -1),
      coreQuantumAccesses_(static_cast<std::size_t>(topology_.coreCount()),
                           0.0) {
  physFreqGhz_.resize(static_cast<std::size_t>(topology_.physicalCoreCount()));
  for (const CoreDesc& core : topology_.cores())
    physFreqGhz_[static_cast<std::size_t>(core.physicalCore)] = core.freqGhz;
  if (config_.smtSharedFactor <= 0.0 || config_.smtSharedFactor > 1.0)
    throw std::invalid_argument{"smtSharedFactor must be in (0, 1]"};
  if (config_.migrationStallTicks < 0)
    throw std::invalid_argument{"migrationStallTicks must be >= 0"};
}

int Machine::addProcess(std::string name, PhaseProgram program,
                        int threadCount, bool memoryIntensive) {
  if (threadCount <= 0) throw std::invalid_argument{"threadCount must be > 0"};
  program.validate();

  SimProcess proc;
  proc.id = static_cast<int>(processes_.size());
  proc.name = std::move(name);
  proc.program = std::move(program);
  proc.memoryIntensive = memoryIntensive;
  for (int i = 0; i < threadCount; ++i) {
    SimThread t;
    t.id = static_cast<int>(threads_.size());
    t.processId = proc.id;
    t.indexInProcess = i;
    t.socketConflict.reserve(static_cast<std::size_t>(topology_.socketCount()));
    for (int s = 0; s < topology_.socketCount(); ++s) {
      t.socketConflict.push_back(
          rng_.uniform(1.0 - config_.conflictSpread,
                       1.0 + config_.conflictSpread));
    }
    proc.threadIds.push_back(t.id);
    liveThreads_.push_back(t.id);  // new ids are largest: order stays ascending
    threads_.push_back(t);
    appendHotThread(threads_.back());
  }
  processes_.push_back(std::move(proc));
  for (int id : processes_.back().threadIds) refreshPhaseCache(id);
  llcDirty_ = true;
  return processes_.back().id;
}

void Machine::appendHotThread(const SimThread& t) {
  hot_.executed.push_back(t.executed);
  hot_.phaseExecuted.push_back(t.phaseExecuted);
  hot_.quantumInstructions.push_back(t.quantumInstructions);
  hot_.quantumAccesses.push_back(t.quantumAccesses);
  hot_.totalAccesses.push_back(t.totalAccesses);
  hot_.prevUtilization.push_back(t.prevUtilization);
  hot_.runnableTicks.push_back(t.runnableTicks);
  hot_.stallTicks.push_back(t.stallTicks);
  hot_.barrierTicks.push_back(t.barrierTicks);
  hot_.suspendedTicks.push_back(t.suspendedTicks);
  hot_.fastCoreTicks.push_back(t.fastCoreTicks);
  hot_.slowCoreTicks.push_back(t.slowCoreTicks);
  hot_.coreId.push_back(t.coreId);
  hot_.stallUntil.push_back(t.stallUntilTick);
  hot_.coldUntil.push_back(t.coldUntilTick);
  hot_.suspended.push_back(0);
  hot_.waiting.push_back(0);
  hot_.finished.push_back(0);
  hot_.barriersPassed.push_back(t.barriersPassed);
  hot_.socket.push_back(-1);
  hot_.physicalCore.push_back(-1);
  hot_.fastCore.push_back(0);
  hot_.conflict.push_back(1.0);
  hot_.phase.push_back(nullptr);
  hot_.barrierEvery.push_back(0.0);
  hot_.totalInstructions.push_back(0.0);
  syncHotThread(t.id);
  // The phase cache is refreshed by the caller once the owning process is
  // in processes_ (currentPhase needs it there).
}

void Machine::syncHotThread(int threadId) {
  const auto i = static_cast<std::size_t>(threadId);
  const SimThread& t = threads_[i];
  hot_.coreId[i] = t.coreId;
  hot_.stallUntil[i] = t.stallUntilTick;
  hot_.coldUntil[i] = t.coldUntilTick;
  hot_.suspended[i] = t.suspended ? 1 : 0;
  hot_.waiting[i] = t.waitingAtBarrier ? 1 : 0;
  hot_.finished[i] = t.finished ? 1 : 0;
  hot_.barriersPassed[i] = t.barriersPassed;
  if (t.coreId >= 0) {
    const CoreDesc& core = topology_.core(t.coreId);
    hot_.socket[i] = core.socket;
    hot_.physicalCore[i] = core.physicalCore;
    hot_.fastCore[i] = core.type == CoreType::Fast ? 1 : 0;
    hot_.conflict[i] =
        t.socketConflict[static_cast<std::size_t>(core.socket)];
  } else {
    hot_.socket[i] = -1;
    hot_.physicalCore[i] = -1;
    hot_.fastCore[i] = 0;
    hot_.conflict[i] = 1.0;
  }
}

void Machine::refreshPhaseCache(int threadId) {
  const auto i = static_cast<std::size_t>(threadId);
  const SimThread& t = threads_[i];
  const SimProcess& proc = processes_[static_cast<std::size_t>(t.processId)];
  hot_.phase[i] = &currentPhase(t);
  hot_.barrierEvery[i] = proc.program.barrierEveryInstructions;
  hot_.totalInstructions[i] = proc.program.totalInstructions();
}

void Machine::rebuildHotState() {
  for (const SimThread& t : threads_) {
    const auto i = static_cast<std::size_t>(t.id);
    hot_.executed[i] = t.executed;
    hot_.phaseExecuted[i] = t.phaseExecuted;
    hot_.quantumInstructions[i] = t.quantumInstructions;
    hot_.quantumAccesses[i] = t.quantumAccesses;
    hot_.totalAccesses[i] = t.totalAccesses;
    hot_.prevUtilization[i] = t.prevUtilization;
    hot_.runnableTicks[i] = t.runnableTicks;
    hot_.stallTicks[i] = t.stallTicks;
    hot_.barrierTicks[i] = t.barrierTicks;
    hot_.suspendedTicks[i] = t.suspendedTicks;
    hot_.fastCoreTicks[i] = t.fastCoreTicks;
    hot_.slowCoreTicks[i] = t.slowCoreTicks;
    syncHotThread(t.id);
    refreshPhaseCache(t.id);
  }
  hotDirty_ = false;
  llcDirty_ = true;
  servedValid_ = false;
}

void Machine::flushHotState() const noexcept {
  if (!hotDirty_) return;
  for (SimThread& t : threads_) {
    const auto i = static_cast<std::size_t>(t.id);
    t.executed = hot_.executed[i];
    t.phaseExecuted = hot_.phaseExecuted[i];
    t.quantumInstructions = hot_.quantumInstructions[i];
    t.quantumAccesses = hot_.quantumAccesses[i];
    t.totalAccesses = hot_.totalAccesses[i];
    t.prevUtilization = hot_.prevUtilization[i];
    t.runnableTicks = hot_.runnableTicks[i];
    t.stallTicks = hot_.stallTicks[i];
    t.barrierTicks = hot_.barrierTicks[i];
    t.suspendedTicks = hot_.suspendedTicks[i];
    t.fastCoreTicks = hot_.fastCoreTicks[i];
    t.slowCoreTicks = hot_.slowCoreTicks[i];
  }
  hotDirty_ = false;
}

void Machine::placeThread(int threadId, int coreId) {
  SimThread& t = threads_.at(static_cast<std::size_t>(threadId));
  if (t.coreId >= 0) throw std::logic_error{"thread is already placed"};
  if (coreToThread_.at(static_cast<std::size_t>(coreId)) != -1)
    throw std::logic_error{"core is already occupied"};
  t.coreId = coreId;
  t.startTick = now_;
  coreToThread_[static_cast<std::size_t>(coreId)] = threadId;
  syncHotThread(threadId);
  llcDirty_ = true;
  emit(TraceEventKind::Placement, t, -1, coreId);
}

bool Machine::allFinished() const noexcept { return liveThreads_.empty(); }

int Machine::runningThreadCount() const noexcept {
  return static_cast<int>(std::count_if(
      liveThreads_.begin(), liveThreads_.end(), [this](int id) {
        return threads_[static_cast<std::size_t>(id)].coreId >= 0;
      }));
}

void Machine::emit(TraceEventKind kind, const SimThread& t, int fromCore,
                   int toCore, int detail) {
  if (trace_ == nullptr) return;
  TraceEvent e;
  e.tick = now_;
  e.kind = kind;
  e.threadId = t.id;
  e.processId = t.processId;
  e.fromCore = fromCore;
  e.toCore = toCore;
  e.detail = detail;
  trace_->record(e);
}

bool Machine::isRunnable(const SimThread& t) const noexcept {
  return !t.finished && t.coreId >= 0 && now_ >= t.stallUntilTick &&
         !t.waitingAtBarrier && !t.suspended;
}

const Phase& Machine::currentPhase(const SimThread& t) const {
  const auto& phases =
      processes_[static_cast<std::size_t>(t.processId)].program.phases;
  const auto idx = std::min(static_cast<std::size_t>(t.phaseIndex),
                            phases.size() - 1);
  return phases[idx];
}

void Machine::step() { (void)stepOnce(); }

Machine::TickOutcome Machine::stepOnce() {
  const util::Tick tickEnd = now_ + 1;
  tickHadEvent_ = false;
  hotDirty_ = true;
  bool utilChanged = false;
  bool timerEdge = false;

  // LLC pressure: per socket, the summed working sets of resident threads
  // (stalled and barrier-blocked threads still occupy cache). Its inputs
  // change only on placement/phase/membership events, so the transformed
  // inflation factors are cached across ticks (recomputing would repeat the
  // exact same summation — the cache is bit-identical).
  if (llcDirty_) {
    llcPressureScratch_.assign(
        static_cast<std::size_t>(topology_.socketCount()), 0.0);
    for (int id : liveThreads_) {
      const auto i = static_cast<std::size_t>(id);
      if (hot_.coreId[i] < 0) continue;
      llcPressureScratch_[static_cast<std::size_t>(hot_.socket[i])] +=
          hot_.phase[i]->workingSetMB;
    }
    for (double& mb : llcPressureScratch_) {
      const double pressure =
          config_.llcPerSocketMB > 0.0 ? mb / config_.llcPerSocketMB : 0.0;
      mb = std::min(
          2.0, 1.0 + config_.llcPressureFactor * std::max(0.0, pressure - 1.0));
    }
    llcFactor_ = llcPressureScratch_;
    llcDirty_ = false;
  }
  const std::vector<double>& llcFactor = llcFactor_;

  // Fused accounting pass: energy watts, per-state tick counters, SMT load
  // per physical core, and the leap-blocking stall/cold expiry probe — one
  // stream over the SoA arrays. Each accumulator still sees exactly the
  // additions, in exactly the liveThreads_ order, of the unfused loops.
  double watts = config_.idlePowerW *
                 static_cast<double>(topology_.physicalCoreCount());
  smtLoadScratch_.assign(
      static_cast<std::size_t>(topology_.physicalCoreCount()), 0.0);
  for (int id : liveThreads_) {
    const auto i = static_cast<std::size_t>(id);
    const int core = hot_.coreId[i];
    if (core < 0) continue;
    if (hot_.stallUntil[i] == tickEnd || hot_.coldUntil[i] == tickEnd)
      timerEdge = true;
    const bool stalled = now_ < hot_.stallUntil[i];
    const bool runnable =
        !stalled && hot_.waiting[i] == 0 && hot_.suspended[i] == 0;
    if (runnable) {
      const double f =
          physFreqGhz_[static_cast<std::size_t>(hot_.physicalCore[i])] /
          std::max(1e-9, config_.refFreqGhz);
      watts += config_.dynamicPowerW * f * f * f * hot_.prevUtilization[i];
      smtLoadScratch_[static_cast<std::size_t>(hot_.physicalCore[i])] +=
          hot_.prevUtilization[i];
      ++hot_.runnableTicks[i];
      if (hot_.fastCore[i] != 0)
        ++hot_.fastCoreTicks[i];
      else
        ++hot_.slowCoreTicks[i];
    } else if (hot_.suspended[i] != 0) {
      ++hot_.suspendedTicks[i];
    } else if (stalled) {
      ++hot_.stallTicks[i];
    } else {
      ++hot_.barrierTicks[i];
    }
  }
  energyJ_ += watts * util::kTickSeconds;

  // Gather issue capacities and memory demands for runnable threads.
  demandScratch_.clear();
  capScratch_.clear();
  activeScratch_.clear();
  std::vector<int>& activeThreads = activeScratch_;
  for (int id : liveThreads_) {
    const auto i = static_cast<std::size_t>(id);
    if (hot_.coreId[i] < 0 || now_ < hot_.stallUntil[i] ||
        hot_.waiting[i] != 0 || hot_.suspended[i] != 0)
      continue;
    const Phase& phase = *hot_.phase[i];
    const double siblingUtil = std::clamp(
        smtLoadScratch_[static_cast<std::size_t>(hot_.physicalCore[i])] -
            hot_.prevUtilization[i],
        0.0, 1.0);
    const double smtFactor =
        1.0 - (1.0 - config_.smtSharedFactor) * siblingUtil;
    const bool cold = now_ < hot_.coldUntil[i];
    const double coldIpc = cold ? config_.cacheColdSlowdown : 1.0;
    const double coldTraffic = cold ? config_.cacheColdFactor : 1.0;
    const double conflict = hot_.conflict[i];
    const double llcInflate =
        llcFactor[static_cast<std::size_t>(hot_.socket[i])];
    const double freqGhz =
        physFreqGhz_[static_cast<std::size_t>(hot_.physicalCore[i])];
    const double capInstr = freqGhz * 1e9 * phase.ipc * smtFactor * coldIpc *
                            util::kTickSeconds;
    capScratch_.push_back(capInstr);
    demandScratch_.push_back(
        MemoryDemand{hot_.socket[i], capInstr * phase.memPerInstr *
                                         coldTraffic * conflict * llcInflate});
    activeThreads.push_back(id);
  }

  // Memoized arbitration: bitwise-identical demands (the active-set
  // signature) make arbitrateInto — a pure function of them — return the
  // previous tick's served vector unchanged, so it is simply reused.
  if (servedValid_ && sameDemands(demandScratch_, prevDemands_)) {
    DIKE_COUNTER("sim.mem.arb_cache_hits");
  } else {
    arbitrateInto(demandScratch_, config_.memory, topology_.socketCount(),
                  util::kTickSeconds, arbScratch_, servedScratch_);
    prevDemands_.assign(demandScratch_.begin(), demandScratch_.end());
    servedValid_ = true;
  }
  const std::vector<double>& served = servedScratch_;

  executedScratch_.clear();
  accessesScratch_.clear();
  for (std::size_t k = 0; k < activeThreads.size(); ++k) {
    const auto i = static_cast<std::size_t>(activeThreads[k]);
    const Phase& phase = *hot_.phase[i];
    const double capInstr = capScratch_[k];
    const double cold = now_ < hot_.coldUntil[i] ? config_.cacheColdFactor : 1.0;
    const double conflict = hot_.conflict[i];
    const double llcInflate =
        llcFactor[static_cast<std::size_t>(hot_.socket[i])];
    const double effMemPerInstr =
        phase.memPerInstr * cold * conflict * llcInflate;
    const double memLimited =
        effMemPerInstr > 0.0 ? served[k] / effMemPerInstr : capInstr;
    double executed = std::min(capInstr, memLimited);

    // Clip to the current phase boundary.
    const double phaseRemaining = phase.instructions - hot_.phaseExecuted[i];
    executed = std::min(executed, phaseRemaining);

    // Clip to the next barrier, if the program synchronises.
    const double barrierEvery = hot_.barrierEvery[i];
    bool hitBarrier = false;
    if (barrierEvery > 0.0) {
      const double nextBarrierAt =
          static_cast<double>(hot_.barriersPassed[i] + 1) * barrierEvery;
      const double total = hot_.totalInstructions[i];
      if (nextBarrierAt < total - kEps) {
        const double toBarrier = nextBarrierAt - hot_.executed[i];
        if (executed >= toBarrier - kEps) {
          executed = std::max(0.0, toBarrier);
          hitBarrier = true;
        }
      }
    }

    const double newUtil = capInstr > 0.0 ? executed / capInstr : 0.0;
    // Snap to the previous utilisation when the move is within epsilon so
    // the SMT feedback loop reaches an exact fixed point (see MachineConfig).
    if (std::abs(newUtil - hot_.prevUtilization[i]) >
        config_.utilizationSnapEpsilon) {
      hot_.prevUtilization[i] = newUtil;
      utilChanged = true;
    }
    const double accesses = executed * effMemPerInstr;
    executedScratch_.push_back(executed);
    accessesScratch_.push_back(accesses);
    advanceThread(activeThreads[k], executed, accesses);
    if (hitBarrier && hot_.finished[i] == 0) {
      SimThread& t = threads_[i];
      ++t.barriersPassed;
      t.waitingAtBarrier = true;
      hot_.barriersPassed[i] = t.barriersPassed;
      hot_.waiting[i] = 1;
      tickHadEvent_ = true;
      emit(TraceEventKind::BarrierWait, t, -1, -1, t.barriersPassed);
    }
  }

  now_ = tickEnd;
  resolveBarriers();
  ++stats_.computedTicks;
  DIKE_COUNTER("sim.ticks.computed");

  // The next tick repeats this one bitwise unless something structural
  // happened, a utilisation moved, or a stall/cold window expires exactly
  // at the next tick boundary (which would flip a predicate between the
  // computed tick and its first replay). The expiry probe ran in the fused
  // accounting pass: within a tick stallUntil/coldUntil are immutable, and
  // the only membership change — a finish — also sets tickHadEvent_.
  const bool steady = !tickHadEvent_ && !utilChanged && !timerEdge;
  return TickOutcome{steady, watts};
}

util::Tick Machine::leapHorizon(util::Tick target) const {
  util::Tick n = target - now_;
  // Stall/cold windows: keep every time predicate constant across the leap.
  for (int id : liveThreads_) {
    const auto i = static_cast<std::size_t>(id);
    if (hot_.coreId[i] < 0) continue;
    if (now_ < hot_.stallUntil[i]) n = std::min(n, hot_.stallUntil[i] - now_);
    if (now_ < hot_.coldUntil[i]) n = std::min(n, hot_.coldUntil[i] - now_);
  }
  // Progress events: stop (conservatively) before any active thread can
  // cross its phase boundary or reach its next barrier.
  for (std::size_t k = 0; k < activeScratch_.size(); ++k) {
    const auto i = static_cast<std::size_t>(activeScratch_[k]);
    const double e = executedScratch_[k];
    if (e <= 0.0) continue;
    const Phase& phase = *hot_.phase[i];
    const double slack = std::max(kEps, phase.instructions * 1e-12);
    n = std::min(n,
                 ticksBelow(phase.instructions - slack - hot_.phaseExecuted[i],
                            e));
    const double barrierEvery = hot_.barrierEvery[i];
    if (barrierEvery > 0.0) {
      const double nextBarrierAt =
          static_cast<double>(hot_.barriersPassed[i] + 1) * barrierEvery;
      if (nextBarrierAt < hot_.totalInstructions[i] - kEps)
        n = std::min(n, ticksBelow(nextBarrierAt - kEps - hot_.executed[i], e));
    }
  }
  return std::max<util::Tick>(n, 0);
}

void Machine::replayTicks(util::Tick n, double watts) {
  // Bit-identity rule: per accumulator, perform exactly the additions the
  // per-tick loop would have performed (repeated FP addition of a constant
  // is not equal to one multiply-add). Integer counters are exact either
  // way. Everything else — pressure, arbitration, phase lookups — is
  // provably unchanged across the window and simply not recomputed.
  hotDirty_ = true;
  const double wJ = watts * util::kTickSeconds;
  for (util::Tick k = 0; k < n; ++k) energyJ_ += wJ;

  for (int id : liveThreads_) {
    const auto i = static_cast<std::size_t>(id);
    if (hot_.coreId[i] < 0) continue;
    if (hot_.suspended[i] != 0) {
      hot_.suspendedTicks[i] += n;
    } else if (now_ < hot_.stallUntil[i]) {
      hot_.stallTicks[i] += n;
    } else if (hot_.waiting[i] != 0) {
      hot_.barrierTicks[i] += n;
    } else {
      hot_.runnableTicks[i] += n;
      if (hot_.fastCore[i] != 0)
        hot_.fastCoreTicks[i] += n;
      else
        hot_.slowCoreTicks[i] += n;
    }
  }

  for (std::size_t k = 0; k < activeScratch_.size(); ++k) {
    const auto i = static_cast<std::size_t>(activeScratch_[k]);
    const double e = executedScratch_[k];
    const double a = accessesScratch_[k];
    // The six chains are independent of each other, so one fused loop lets
    // them retire in parallel instead of serialising six latency-bound
    // chains; within each chain the addition order is unchanged.
    double executed = hot_.executed[i];
    double phaseExecuted = hot_.phaseExecuted[i];
    double quantumInstructions = hot_.quantumInstructions[i];
    double quantumAccesses = hot_.quantumAccesses[i];
    double totalAccesses = hot_.totalAccesses[i];
    double coreAccesses =
        coreQuantumAccesses_[static_cast<std::size_t>(hot_.coreId[i])];
    for (util::Tick t = 0; t < n; ++t) {
      executed += e;
      phaseExecuted += e;
      quantumInstructions += e;
      quantumAccesses += a;
      totalAccesses += a;
      coreAccesses += a;
    }
    hot_.executed[i] = executed;
    hot_.phaseExecuted[i] = phaseExecuted;
    hot_.quantumInstructions[i] = quantumInstructions;
    hot_.quantumAccesses[i] = quantumAccesses;
    hot_.totalAccesses[i] = totalAccesses;
    coreQuantumAccesses_[static_cast<std::size_t>(hot_.coreId[i])] =
        coreAccesses;
  }

  now_ += n;
  stats_.leapedTicks += n;
  DIKE_COUNTER("sim.leap.replays");
  DIKE_COUNTER_ADD("sim.ticks.leaped", n);
}

void Machine::stepUntil(util::Tick target, bool stopWhenAllFinished) {
  while (now_ < target) {
    if (stopWhenAllFinished && liveThreads_.empty()) return;
    const TickOutcome tick = stepOnce();
    if (stopWhenAllFinished && liveThreads_.empty()) return;
    if (!config_.tickLeaping || !tick.steady || now_ >= target) continue;
    const util::Tick n = leapHorizon(target);
    if (n > 0) replayTicks(n, tick.watts);
  }
}

void Machine::advanceThread(int threadId, double executed, double accesses) {
  const auto i = static_cast<std::size_t>(threadId);
  hot_.executed[i] += executed;
  hot_.phaseExecuted[i] += executed;
  hot_.quantumInstructions[i] += executed;
  hot_.quantumAccesses[i] += accesses;
  hot_.totalAccesses[i] += accesses;
  if (hot_.coreId[i] >= 0)
    coreQuantumAccesses_[static_cast<std::size_t>(hot_.coreId[i])] += accesses;

  SimThread& t = threads_[i];
  const SimProcess& proc = processes_[static_cast<std::size_t>(t.processId)];
  const auto& phases = proc.program.phases;

  // Phase transition(s): a tick never spans more than one boundary because
  // executed was clipped to the phase remainder above. Per-phase budgets
  // use a relative epsilon so accumulated floating error over billions of
  // instructions cannot strand a thread one tick short of a boundary.
  if (t.phaseIndex < static_cast<int>(phases.size())) {
    const Phase& phase = phases[static_cast<std::size_t>(t.phaseIndex)];
    const double slack = std::max(kEps, phase.instructions * 1e-12);
    if (hot_.phaseExecuted[i] >= phase.instructions - slack) {
      ++t.phaseIndex;
      hot_.phaseExecuted[i] = 0.0;
      tickHadEvent_ = true;
      llcDirty_ = true;  // the new phase's working set changes LLC pressure
      if (t.phaseIndex < static_cast<int>(phases.size()))
        emit(TraceEventKind::PhaseChange, t, -1, -1, t.phaseIndex);
      refreshPhaseCache(threadId);
    }
  }

  // A thread is done exactly when it has retired every phase — comparing
  // the cumulative counter against the total budget would double-count the
  // drift the per-phase clipping already absorbed.
  if (t.phaseIndex >= static_cast<int>(phases.size())) finishThread(t);
}

void Machine::finishThread(SimThread& t) {
  if (t.finished) return;
  const auto i = static_cast<std::size_t>(t.id);
  t.finished = true;
  t.finishTick = now_ + 1;  // completes at the end of the current tick
  t.waitingAtBarrier = false;
  hot_.finished[i] = 1;
  hot_.waiting[i] = 0;
  llcDirty_ = true;  // the thread's working set leaves its socket's LLC
  tickHadEvent_ = true;
  if (t.coreId >= 0) coreToThread_[static_cast<std::size_t>(t.coreId)] = -1;
  // Ordered erase keeps liveThreads_ ascending, preserving the FP summation
  // order of the per-tick loops.
  const auto it = std::find(liveThreads_.begin(), liveThreads_.end(), t.id);
  if (it != liveThreads_.end()) liveThreads_.erase(it);

  SimProcess& proc = processes_[static_cast<std::size_t>(t.processId)];
  const bool allDone = std::all_of(
      proc.threadIds.begin(), proc.threadIds.end(), [this](int id) {
        return threads_[static_cast<std::size_t>(id)].finished;
      });
  emit(TraceEventKind::ThreadFinish, t);
  if (allDone) {
    proc.finishTick = t.finishTick;
    emit(TraceEventKind::ProcessFinish, t);
  }
}

void Machine::resolveBarriers() {
  for (const SimProcess& proc : processes_) {
    if (!proc.program.hasBarriers() || proc.finished()) continue;
    int minPassed = std::numeric_limits<int>::max();
    bool anyWaiting = false;
    for (int id : proc.threadIds) {
      const SimThread& t = threads_[static_cast<std::size_t>(id)];
      if (t.finished) continue;
      minPassed = std::min(minPassed, t.barriersPassed);
      anyWaiting = anyWaiting || t.waitingAtBarrier;
    }
    if (!anyWaiting) continue;
    for (int id : proc.threadIds) {
      SimThread& t = threads_[static_cast<std::size_t>(id)];
      if (!t.finished && t.waitingAtBarrier && t.barriersPassed <= minPassed) {
        t.waitingAtBarrier = false;
        hot_.waiting[static_cast<std::size_t>(id)] = 0;
        tickHadEvent_ = true;
        emit(TraceEventKind::BarrierRelease, t, -1, -1, t.barriersPassed);
      }
    }
  }
}

void Machine::applyMigrationStall(SimThread& t, int fromCore) {
  t.stallUntilTick = now_ + config_.migrationStallTicks;
  t.coldUntilTick =
      now_ + config_.migrationStallTicks + config_.cacheColdTicks;
  ++t.migrations;
  t.lastMigrationTick = now_;
  ++migrationCount_;
  DIKE_COUNTER("sim.migrations");
  emit(TraceEventKind::Migration, t, fromCore, t.coreId);
}

void Machine::swapThreads(int threadA, int threadB) {
  if (threadA == threadB)
    throw std::invalid_argument{"cannot swap a thread with itself"};
  SimThread& a = threads_.at(static_cast<std::size_t>(threadA));
  SimThread& b = threads_.at(static_cast<std::size_t>(threadB));
  if (a.finished || b.finished)
    throw std::logic_error{"cannot swap a finished thread"};
  if (a.coreId < 0 || b.coreId < 0)
    throw std::logic_error{"cannot swap an unplaced thread"};

  const int coreA = a.coreId;
  const int coreB = b.coreId;
  std::swap(a.coreId, b.coreId);
  coreToThread_[static_cast<std::size_t>(a.coreId)] = a.id;
  coreToThread_[static_cast<std::size_t>(b.coreId)] = b.id;
  applyMigrationStall(a, coreA);
  applyMigrationStall(b, coreB);
  syncHotThread(a.id);
  syncHotThread(b.id);
  llcDirty_ = true;
  ++swapCount_;
  DIKE_COUNTER("sim.swaps");
  const auto stall =
      static_cast<double>(config_.migrationStallTicks + config_.cacheColdTicks);
  telemetry::publish(telemetry::EventKind::ActuationStall,
                     static_cast<std::uint32_t>(a.id), now_, stall, 1.0);
  telemetry::publish(telemetry::EventKind::ActuationStall,
                     static_cast<std::uint32_t>(b.id), now_, stall, 1.0);
}

void Machine::migrateThread(int threadId, int coreId) {
  SimThread& t = threads_.at(static_cast<std::size_t>(threadId));
  if (t.finished) throw std::logic_error{"cannot migrate a finished thread"};
  if (coreToThread_.at(static_cast<std::size_t>(coreId)) != -1)
    throw std::logic_error{"destination core is occupied"};
  const int fromCore = t.coreId;
  if (t.coreId >= 0) coreToThread_[static_cast<std::size_t>(t.coreId)] = -1;
  t.coreId = coreId;
  coreToThread_[static_cast<std::size_t>(coreId)] = threadId;
  applyMigrationStall(t, fromCore);
  syncHotThread(threadId);
  llcDirty_ = true;
  telemetry::publish(
      telemetry::EventKind::ActuationStall, static_cast<std::uint32_t>(t.id),
      now_,
      static_cast<double>(config_.migrationStallTicks + config_.cacheColdTicks),
      2.0);
}

void Machine::setPhysicalCoreFrequency(int physicalCore, double freqGhz) {
  if (freqGhz <= 0.0) throw std::invalid_argument{"frequency must be > 0"};
  physFreqGhz_.at(static_cast<std::size_t>(physicalCore)) = freqGhz;
}

void Machine::setSocketFrequency(int socket, double freqGhz) {
  bool any = false;
  for (const CoreDesc& core : topology_.cores()) {
    if (core.socket == socket && core.smtIndex == 0) {
      setPhysicalCoreFrequency(core.physicalCore, freqGhz);
      any = true;
    }
  }
  if (!any) throw std::out_of_range{"unknown socket"};
}

double Machine::coreFrequencyGhz(int vcore) const {
  return physFreqGhz_.at(
      static_cast<std::size_t>(topology_.core(vcore).physicalCore));
}

void Machine::suspendThread(int threadId) {
  SimThread& t = threads_.at(static_cast<std::size_t>(threadId));
  if (t.finished) throw std::logic_error{"cannot suspend a finished thread"};
  if (t.suspended) return;
  t.suspended = true;
  hot_.suspended[static_cast<std::size_t>(threadId)] = 1;
  emit(TraceEventKind::Suspend, t);
}

void Machine::resumeThread(int threadId) {
  SimThread& t = threads_.at(static_cast<std::size_t>(threadId));
  if (!t.suspended) return;
  t.suspended = false;
  hot_.suspended[static_cast<std::size_t>(threadId)] = 0;
  emit(TraceEventKind::Resume, t);
}

QuantumSample Machine::sampleAndReset() {
  QuantumSample sample;
  sampleAndResetInto(sample);
  return sample;
}

void Machine::sampleAndResetInto(QuantumSample& out) {
  DIKE_SCOPE_TIMER("sim.sample_and_reset");
  DIKE_COUNTER("sim.samples");
  out.periodTicks = std::max<util::Tick>(1, now_ - lastSampleTick_);
  const double periodSec =
      static_cast<double>(out.periodTicks) * util::kTickSeconds;

  // Every thread — finished ones included — is visited in id order so the
  // two noise draws per thread consume the RNG stream exactly as before.
  out.threads.clear();
  out.threads.reserve(threads_.size());
  for (const SimThread& t : threads_) {
    const auto i = static_cast<std::size_t>(t.id);
    ThreadSample s;
    s.threadId = t.id;
    s.processId = t.processId;
    s.coreId = hot_.coreId[i];
    s.finished = hot_.finished[i] != 0;
    const double noise = rng_.noiseFactor(config_.measurementNoiseSigma);
    s.instructions = hot_.quantumInstructions[i];
    s.accesses = hot_.quantumAccesses[i];
    s.accessRate = (hot_.quantumAccesses[i] / periodSec) * noise;
    const double ratioNoise = rng_.noiseFactor(config_.measurementNoiseSigma);
    s.llcMissRatio =
        std::clamp(hot_.phase[i]->llcMissRatio * ratioNoise, 0.0, 1.0);
    out.threads.push_back(s);

    hot_.quantumInstructions[i] = 0.0;
    hot_.quantumAccesses[i] = 0.0;
  }
  hotDirty_ = true;  // the quantum accumulators were just zeroed

  out.coreAchievedBw.resize(coreQuantumAccesses_.size());
  for (std::size_t c = 0; c < coreQuantumAccesses_.size(); ++c) {
    out.coreAchievedBw[c] = coreQuantumAccesses_[c] / periodSec;
    coreQuantumAccesses_[c] = 0.0;
  }
  lastSampleTick_ = now_;
}

void Machine::saveState(ckpt::BinWriter& w) const {
  flushHotState();  // checkpoints serialize the struct-of-record threads
  w.beginSection("machine");
  w.i64("now", now_);
  w.i64("lastSampleTick", lastSampleTick_);
  w.i64("swapCount", swapCount_);
  w.i64("migrationCount", migrationCount_);
  w.f64("energyJoules", energyJ_);
  w.i64("computedTicks", stats_.computedTicks);
  w.i64("leapedTicks", stats_.leapedTicks);
  ckpt::save(w, "rng", rng_);
  w.vecF64("physFreqGhz", physFreqGhz_);
  w.vecInt("coreToThread", coreToThread_);
  w.vecInt("liveThreads", liveThreads_);
  w.vecF64("coreQuantumAccesses", coreQuantumAccesses_);
  w.i64("threadCount", util::isize(threads_));
  for (const SimThread& t : threads_) {
    w.beginSection("thread " + std::to_string(t.id));
    w.i64("id", t.id);
    w.i64("processId", t.processId);
    w.i64("indexInProcess", t.indexInProcess);
    w.f64("executed", t.executed);
    w.f64("phaseExecuted", t.phaseExecuted);
    w.i64("phaseIndex", t.phaseIndex);
    w.i64("coreId", t.coreId);
    w.i64("stallUntilTick", t.stallUntilTick);
    w.i64("coldUntilTick", t.coldUntilTick);
    w.boolean("suspended", t.suspended);
    w.boolean("waitingAtBarrier", t.waitingAtBarrier);
    w.i64("barriersPassed", t.barriersPassed);
    w.i64("startTick", t.startTick);
    w.boolean("finished", t.finished);
    w.i64("finishTick", t.finishTick);
    w.f64("quantumInstructions", t.quantumInstructions);
    w.f64("quantumAccesses", t.quantumAccesses);
    w.f64("totalAccesses", t.totalAccesses);
    w.i64("migrations", t.migrations);
    w.i64("lastMigrationTick", t.lastMigrationTick);
    w.vecF64("socketConflict", t.socketConflict);
    w.f64("prevUtilization", t.prevUtilization);
    w.i64("runnableTicks", t.runnableTicks);
    w.i64("stallTicks", t.stallTicks);
    w.i64("barrierTicks", t.barrierTicks);
    w.i64("suspendedTicks", t.suspendedTicks);
    w.i64("fastCoreTicks", t.fastCoreTicks);
    w.i64("slowCoreTicks", t.slowCoreTicks);
    w.endSection();
  }
  w.i64("processCount", util::isize(processes_));
  for (const SimProcess& p : processes_) {
    w.beginSection("process " + std::to_string(p.id));
    w.str("name", p.name);
    w.i64("finishTick", p.finishTick);
    w.endSection();
  }
  w.endSection();
}

void Machine::loadState(ckpt::BinReader& r) {
  r.beginSection("machine");
  const util::Tick now = r.i64("now");
  const util::Tick lastSampleTick = r.i64("lastSampleTick");
  const std::int64_t swapCount = r.i64("swapCount");
  const std::int64_t migrationCount = r.i64("migrationCount");
  const double energyJ = r.f64("energyJoules");
  StepStats stats;
  stats.computedTicks = r.i64("computedTicks");
  stats.leapedTicks = r.i64("leapedTicks");
  util::Rng rng{0};
  ckpt::load(r, "rng", rng);
  const std::vector<double> physFreqGhz = r.vecF64("physFreqGhz");
  if (physFreqGhz.size() != physFreqGhz_.size())
    throw ckpt::CheckpointError{
        "checkpointed machine has " + std::to_string(physFreqGhz.size()) +
        " physical cores but this topology has " +
        std::to_string(physFreqGhz_.size())};
  const std::vector<int> coreToThread = r.vecInt("coreToThread");
  if (coreToThread.size() != coreToThread_.size())
    throw ckpt::CheckpointError{
        "checkpointed machine has " + std::to_string(coreToThread.size()) +
        " vcores but this topology has " +
        std::to_string(coreToThread_.size())};
  const std::vector<int> liveThreads = r.vecInt("liveThreads");
  const std::vector<double> coreQuantumAccesses =
      r.vecF64("coreQuantumAccesses");
  if (coreQuantumAccesses.size() != coreQuantumAccesses_.size())
    throw ckpt::CheckpointError{
        "checkpointed per-core counters cover " +
        std::to_string(coreQuantumAccesses.size()) +
        " vcores but this topology has " +
        std::to_string(coreQuantumAccesses_.size())};
  const std::int64_t threadCount = r.i64("threadCount");
  if (threadCount != util::isize(threads_))
    throw ckpt::CheckpointError{
        "checkpointed machine has " + std::to_string(threadCount) +
        " threads but this run spec builds " +
        std::to_string(threads_.size()) +
        " — the checkpoint was taken under a different config"};
  std::vector<SimThread> restored = threads_;
  for (SimThread& t : restored) {
    r.beginSection("thread " + std::to_string(t.id));
    const std::int64_t id = r.i64("id");
    const std::int64_t processId = r.i64("processId");
    const std::int64_t indexInProcess = r.i64("indexInProcess");
    if (id != t.id || processId != t.processId ||
        indexInProcess != t.indexInProcess)
      throw ckpt::CheckpointError{
          "checkpointed thread " + std::to_string(id) +
          " does not match the constructed thread " + std::to_string(t.id) +
          " — the checkpoint was taken under a different config"};
    t.executed = r.f64("executed");
    t.phaseExecuted = r.f64("phaseExecuted");
    t.phaseIndex = static_cast<int>(r.i64("phaseIndex"));
    t.coreId = static_cast<int>(r.i64("coreId"));
    t.stallUntilTick = r.i64("stallUntilTick");
    t.coldUntilTick = r.i64("coldUntilTick");
    t.suspended = r.boolean("suspended");
    t.waitingAtBarrier = r.boolean("waitingAtBarrier");
    t.barriersPassed = static_cast<int>(r.i64("barriersPassed"));
    t.startTick = r.i64("startTick");
    t.finished = r.boolean("finished");
    t.finishTick = r.i64("finishTick");
    t.quantumInstructions = r.f64("quantumInstructions");
    t.quantumAccesses = r.f64("quantumAccesses");
    t.totalAccesses = r.f64("totalAccesses");
    t.migrations = static_cast<int>(r.i64("migrations"));
    t.lastMigrationTick = r.i64("lastMigrationTick");
    t.socketConflict = r.vecF64("socketConflict");
    if (t.socketConflict.size() !=
        static_cast<std::size_t>(topology_.socketCount()))
      throw ckpt::CheckpointError{
          "checkpointed thread " + std::to_string(t.id) + " carries " +
          std::to_string(t.socketConflict.size()) +
          " socket-conflict draws but this topology has " +
          std::to_string(topology_.socketCount()) + " sockets"};
    t.prevUtilization = r.f64("prevUtilization");
    t.runnableTicks = r.i64("runnableTicks");
    t.stallTicks = r.i64("stallTicks");
    t.barrierTicks = r.i64("barrierTicks");
    t.suspendedTicks = r.i64("suspendedTicks");
    t.fastCoreTicks = r.i64("fastCoreTicks");
    t.slowCoreTicks = r.i64("slowCoreTicks");
    r.endSection();
  }
  const std::int64_t processCount = r.i64("processCount");
  if (processCount != util::isize(processes_))
    throw ckpt::CheckpointError{
        "checkpointed machine has " + std::to_string(processCount) +
        " processes but this run spec builds " +
        std::to_string(processes_.size()) +
        " — the checkpoint was taken under a different config"};
  std::vector<util::Tick> processFinish(processes_.size(), -1);
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    r.beginSection("process " + std::to_string(processes_[i].id));
    const std::string name = r.str("name");
    if (name != processes_[i].name)
      throw ckpt::CheckpointError{
          "checkpointed process " + std::to_string(processes_[i].id) +
          " is '" + name + "' but this run spec builds '" +
          processes_[i].name +
          "' — the checkpoint was taken under a different config"};
    processFinish[i] = r.i64("finishTick");
    r.endSection();
  }
  r.endSection();

  // Everything parsed and validated — commit. No throw below this line.
  now_ = now;
  lastSampleTick_ = lastSampleTick;
  swapCount_ = swapCount;
  migrationCount_ = migrationCount;
  energyJ_ = energyJ;
  stats_ = stats;
  rng_ = rng;
  physFreqGhz_ = physFreqGhz;
  coreToThread_ = coreToThread;
  liveThreads_ = liveThreads;
  coreQuantumAccesses_ = coreQuantumAccesses;
  threads_ = std::move(restored);
  for (std::size_t i = 0; i < processes_.size(); ++i)
    processes_[i].finishTick = processFinish[i];
  tickHadEvent_ = false;
  rebuildHotState();
}

RunOutcome runMachine(Machine& machine, QuantumPolicy& policy,
                      RunLimits limits) {
  return runMachine(machine, policy, limits, RunCursor{}, nullptr);
}

RunOutcome runMachine(Machine& machine, QuantumPolicy& policy,
                      RunLimits limits, RunCursor start,
                      const QuantumHook& afterQuantum) {
  util::Tick nextQuantumAt =
      start.nextQuantumAt >= 0 ? start.nextQuantumAt : policy.quantumTicks();
  std::int64_t quantumIndex = start.quantumIndex;
  // The stop flag is checked once per loop pass (a quantum boundary at
  // most), so a SIGINT unwinds through the normal return path and every
  // telemetry sink finalises cleanly — never mid-row, never mid-file.
  while (!machine.allFinished() && machine.now() < limits.maxTicks &&
         !util::stopRequested()) {
    const util::Tick target = std::min(
        limits.maxTicks, std::max(nextQuantumAt, machine.now() + 1));
    machine.stepUntil(target);
    if (machine.now() >= nextQuantumAt) {
      if (machine.allFinished()) break;
      policy.onQuantum(machine);
      const util::Tick quantum = std::max<util::Tick>(1, policy.quantumTicks());
      telemetry::publish(telemetry::EventKind::QuantumTicks,
                         static_cast<std::uint32_t>(quantumIndex),
                         machine.now(), static_cast<double>(quantum));
      // Schedule from the previous deadline, not the observed tick, so one
      // late quantum cannot shift the whole subsequent schedule. stepUntil
      // never overshoots the target, so the clamp only guards pathological
      // policies that move the deadline into the past.
      nextQuantumAt = std::max(nextQuantumAt + quantum, machine.now() + 1);
      if (afterQuantum) afterQuantum(machine, quantumIndex, nextQuantumAt);
      ++quantumIndex;
    }
  }
  const bool stopped = util::stopRequested() && !machine.allFinished();
  return RunOutcome{machine.now(), !machine.allFinished() && !stopped,
                    stopped};
}

}  // namespace dike::sim
