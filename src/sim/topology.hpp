// Machine topology: sockets, physical cores, SMT siblings.
#pragma once

#include <span>
#include <vector>

#include "sim/core_types.hpp"

namespace dike::sim {

/// Specification of one socket when building a custom topology.
struct SocketSpec {
  int physicalCores = 10;
  int smtWays = 2;
  double freqGhz = 2.33;
  CoreType type = CoreType::Fast;
};

/// Immutable description of the simulated machine's core layout.
class MachineTopology {
 public:
  /// Build from per-socket specifications. Vcore ids are dense, socket by
  /// socket, physical core by physical core, SMT sibling by sibling.
  explicit MachineTopology(std::span<const SocketSpec> sockets);

  /// The paper's evaluation platform (Table I): two sockets of 10 physical
  /// cores each with 2-way SMT; socket 0 at 2.33 GHz (TurboBoost socket),
  /// socket 1 at 1.21 GHz (minimum frequency) — 40 vcores total.
  [[nodiscard]] static MachineTopology paperTestbed();

  /// Same layout with both sockets fast — the paper's homogeneous
  /// comparison point for Figure 1.
  [[nodiscard]] static MachineTopology homogeneousTestbed();

  /// A small heterogeneous machine (1 socket fast, 1 slow, no SMT) used in
  /// examples and fast tests.
  [[nodiscard]] static MachineTopology smallTestbed(int coresPerSocket = 4);

  [[nodiscard]] int coreCount() const noexcept {
    return static_cast<int>(cores_.size());
  }
  [[nodiscard]] int socketCount() const noexcept { return socketCount_; }
  [[nodiscard]] int physicalCoreCount() const noexcept {
    return physicalCoreCount_;
  }
  [[nodiscard]] const CoreDesc& core(int id) const { return cores_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::span<const CoreDesc> cores() const noexcept {
    return cores_;
  }
  /// Vcore ids sharing the given physical core (including `vcore` itself).
  [[nodiscard]] std::span<const int> smtGroup(int vcore) const;
  /// Number of vcores whose nominal type is Fast.
  [[nodiscard]] int fastCoreCount() const noexcept { return fastCount_; }

 private:
  std::vector<CoreDesc> cores_;
  std::vector<std::vector<int>> physToVcores_;
  int socketCount_ = 0;
  int physicalCoreCount_ = 0;
  int fastCount_ = 0;
};

}  // namespace dike::sim
