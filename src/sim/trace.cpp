#include "sim/trace.hpp"

#include <algorithm>

namespace dike::sim {

std::string_view toString(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::Placement: return "placement";
    case TraceEventKind::Migration: return "migration";
    case TraceEventKind::PhaseChange: return "phase-change";
    case TraceEventKind::BarrierWait: return "barrier-wait";
    case TraceEventKind::BarrierRelease: return "barrier-release";
    case TraceEventKind::Suspend: return "suspend";
    case TraceEventKind::Resume: return "resume";
    case TraceEventKind::ThreadFinish: return "thread-finish";
    case TraceEventKind::ProcessFinish: return "process-finish";
  }
  return "?";
}

std::optional<TraceEventKind> traceEventKindFromName(
    std::string_view name) noexcept {
  constexpr TraceEventKind kAll[] = {
      TraceEventKind::Placement,      TraceEventKind::Migration,
      TraceEventKind::PhaseChange,    TraceEventKind::BarrierWait,
      TraceEventKind::BarrierRelease, TraceEventKind::Suspend,
      TraceEventKind::Resume,         TraceEventKind::ThreadFinish,
      TraceEventKind::ProcessFinish,
  };
  for (TraceEventKind kind : kAll)
    if (toString(kind) == name) return kind;
  return std::nullopt;
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {}

void TraceRecorder::record(const TraceEvent& event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void TraceRecorder::clear() noexcept {
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> TraceRecorder::ofKind(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
               [kind](const TraceEvent& e) { return e.kind == kind; });
  return out;
}

std::vector<TraceEvent> TraceRecorder::ofThread(int threadId) const {
  std::vector<TraceEvent> out;
  std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
               [threadId](const TraceEvent& e) {
                 return e.threadId == threadId;
               });
  return out;
}

std::size_t TraceRecorder::countOf(TraceEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(), [kind](const TraceEvent& e) {
        return e.kind == kind;
      }));
}

}  // namespace dike::sim
