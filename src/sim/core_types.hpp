// Core/socket descriptors for the simulated machine.
#pragma once

#include <string_view>

namespace dike::sim {

/// Nominal core class of the heterogeneous machine. The paper's testbed has
/// one socket at maximum frequency ("fast") and one at minimum ("slow");
/// schedulers never see this label — they must infer capability from
/// measured bandwidth, exactly as on the real machine.
enum class CoreType { Fast, Slow };

[[nodiscard]] constexpr std::string_view toString(CoreType t) noexcept {
  return t == CoreType::Fast ? "fast" : "slow";
}

/// One hardware thread (virtual core).
struct CoreDesc {
  int id = -1;            ///< dense vcore id, 0..coreCount-1
  int socket = -1;        ///< socket index
  int physicalCore = -1;  ///< dense physical-core id across the machine
  int smtIndex = 0;       ///< position among SMT siblings on the physical core
  CoreType type = CoreType::Fast;
  double freqGhz = 0.0;   ///< nominal frequency of the physical core
};

}  // namespace dike::sim
