// Shared memory system: per-socket links feeding a single memory controller.
//
// The paper's platform has one memory controller shared by both sockets;
// contention for it (and for the on-chip interconnect) is the dominant cause
// of unfairness (Section II). Each stage applies max-min (water-filling)
// arbitration: demands at or below the fair share are served in full and the
// leftover capacity is split equally among the heavier demanders. This
// captures the first-order behaviour of real memory systems — threads with
// few misses are barely affected by bandwidth saturation (short queues),
// while streaming threads squeeze each other — which is exactly the
// asymmetry behind the paper's Figure 1 (compute apps degrade ~1.25x,
// memory apps 2-4.6x).
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace dike::sim {

/// Capacities of the two arbitration stages, in LLC-missing accesses per
/// second. Defaults are calibrated so ~3 memory-intensive 8-thread apps
/// saturate the controller (matching the paper's Figure 1 slowdowns).
struct MemoryParams {
  double controllerAccessesPerSec = 3.2e8;
  double socketLinkAccessesPerSec = 2.2e8;
};

/// One thread's demand on the memory system for the current tick.
struct MemoryDemand {
  int socket = 0;
  double accesses = 0.0;  ///< accesses the thread would issue if unthrottled
};

/// Reusable buffers for allocation-free arbitration. The engine calls
/// arbitrate once per simulated tick — millions of times per run — so the
/// intermediate vectors live here instead of being reallocated every call.
/// The per-stage order vectors double as sorted-order hints: demands drift
/// slowly tick-to-tick, so the previous tick's ranking usually still sorts
/// the new demands and the O(n log n) re-sort is skipped (see waterFillInto
/// for why reusing a still-sorted permutation is bit-identical).
struct ArbitrationScratch {
  std::vector<double> afterLink;
  std::vector<double> socketDemands;
  std::vector<std::size_t> socketMembers;
  std::vector<std::size_t> order;
  std::vector<double> granted;
  std::vector<std::vector<std::size_t>> linkOrder;  ///< per-socket hints
  std::vector<std::size_t> controllerOrder;         ///< stage-2 hint

  /// Memo of one water-filling stage: when the inputs (and capacity) are
  /// bitwise identical to the previous call's, the cached grants are the
  /// grants — water-filling is a pure function of them. Keyed per socket
  /// (and once for the controller stage) so one thread's drifting demand
  /// only re-fills its own socket.
  struct StageMemo {
    std::vector<double> demands;
    std::vector<double> granted;
    double capacity = 0.0;
    bool valid = false;
  };
  std::vector<StageMemo> linkMemo;
  StageMemo controllerMemo;
};

/// Max-min arbitration over one tick.
///
/// Stage 1 water-fills each socket's demands against its link capacity;
/// stage 2 water-fills the surviving demand against the controller capacity.
/// Returns the served accesses per input demand, in the same order.
/// Guarantees: served[i] <= demands[i].accesses, per-socket sums respect the
/// link capacity, the grand total respects the controller capacity, and
/// within a stage any unsatisfied demand receives at least as much as every
/// other unsatisfied demand (max-min fairness) — all within floating-point
/// tolerance.
[[nodiscard]] std::vector<double> arbitrate(std::span<const MemoryDemand> demands,
                                            const MemoryParams& params,
                                            int socketCount,
                                            double tickSeconds);

/// Allocation-free arbitrate: identical arithmetic (bit-for-bit results),
/// writing into `served` and reusing `scratch` across calls.
void arbitrateInto(std::span<const MemoryDemand> demands,
                   const MemoryParams& params, int socketCount,
                   double tickSeconds, ArbitrationScratch& scratch,
                   std::vector<double>& served);

/// Single-stage max-min water-filling: serve each demand up to the common
/// water level that exhausts `capacity` (demands below the level are served
/// in full). Exposed for direct testing.
[[nodiscard]] std::vector<double> waterFill(std::span<const double> demands,
                                            double capacity);

/// Allocation-free waterFill: identical arithmetic (bit-for-bit), reusing
/// `order` for the ranking pass and writing into `served`. `order` is also
/// an input: when it is a same-length permutation that still sorts the new
/// demands it is reused as-is and the sort is skipped. Callers that want
/// that fast path must pass the same vector for the same demand stream;
/// passing a stale or foreign vector is safe (it fails the sortedness check
/// and a full sort runs).
void waterFillInto(std::span<const double> demands, double capacity,
                   std::vector<std::size_t>& order,
                   std::vector<double>& served);

}  // namespace dike::sim
