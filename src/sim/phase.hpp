// Phase programs: the behavioural model of a benchmark thread.
//
// A thread executes a sequence of phases. Each phase is characterised by an
// instruction budget and its memory behaviour: LLC-missing accesses per
// instruction (which drives contention) and the LLC miss ratio (which
// schedulers read for classification — the paper's 10% threshold from
// Xie & Loh). This mirrors how the Rodinia applications in the paper move
// through memory-intensive and compute-intensive execution phases.
#pragma once

#include <string>
#include <vector>

namespace dike::sim {

/// One execution phase of a thread.
struct Phase {
  std::string name;
  double instructions = 0.0;   ///< instruction budget of this phase
  double memPerInstr = 0.0;    ///< LLC-missing accesses per instruction
  double llcMissRatio = 0.0;   ///< misses / LLC accesses (classification signal)
  double ipc = 1.0;            ///< base IPC on an uncontended core
  /// Cache-resident working set. When the per-socket sum exceeds the LLC
  /// capacity, co-located threads evict each other and miss traffic rises
  /// (MachineConfig::llcPressureFactor).
  double workingSetMB = 1.0;
};

/// A thread's full behavioural program: the phase sequence, plus optional
/// barrier synchronisation with its sibling threads (used by the kmeans
/// model, whose "excessive inter-thread communication" the paper leans on
/// to raise contention).
struct PhaseProgram {
  std::vector<Phase> phases;
  /// Threads of the owning process synchronise every this many instructions;
  /// 0 disables barriers.
  double barrierEveryInstructions = 0.0;

  [[nodiscard]] double totalInstructions() const noexcept;
  [[nodiscard]] bool hasBarriers() const noexcept {
    return barrierEveryInstructions > 0.0;
  }
  /// Average memory intensity, weighted by instruction budget.
  [[nodiscard]] double meanMemPerInstr() const noexcept;
  /// Throws std::invalid_argument when the program is malformed (no phases,
  /// non-positive budgets, negative intensities, miss ratio outside [0,1]).
  void validate() const;
};

/// Repeat a phase pattern `repeats` times (utility for bursty profiles).
[[nodiscard]] std::vector<Phase> repeatPattern(const std::vector<Phase>& pattern,
                                               int repeats);

}  // namespace dike::sim
