// Execution tracing: a stream of structured events (migrations, phase
// changes, barrier waits, completions) plus per-thread time accounting.
// Used by analysis tooling to verify *why* a schedule is fair — e.g. that
// Dike's rotation really does equalise each thread's time on fast cores —
// and by the trace_timeline example to render schedules.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace dike::sim {

enum class TraceEventKind {
  Placement,       ///< initial pin of a thread to a core
  Migration,       ///< thread moved cores (swap half or free-core move)
  PhaseChange,     ///< thread entered its next phase
  BarrierWait,     ///< thread arrived at a barrier and blocked
  BarrierRelease,  ///< thread released from a barrier
  Suspend,         ///< scheduler paused the thread (suspension enforcement)
  Resume,
  ThreadFinish,
  ProcessFinish,
};

[[nodiscard]] std::string_view toString(TraceEventKind kind) noexcept;

/// Inverse of toString — used when re-reading recorded event CSVs (the
/// dike_trace exporter). nullopt for unrecognised names.
[[nodiscard]] std::optional<TraceEventKind> traceEventKindFromName(
    std::string_view name) noexcept;

struct TraceEvent {
  util::Tick tick = 0;
  TraceEventKind kind = TraceEventKind::Placement;
  int threadId = -1;
  int processId = -1;
  int fromCore = -1;  ///< Migration: previous core; otherwise -1
  int toCore = -1;    ///< Placement/Migration: new core; otherwise -1
  int detail = 0;     ///< PhaseChange: new phase index; Barrier*: barrier #
};

/// Collects events emitted by a Machine. Attach with
/// Machine::setTraceRecorder; recording is off (and free) by default.
class TraceRecorder {
 public:
  /// Cap on stored events (drops further events once full; `dropped()`
  /// reports how many). Guards long runs against unbounded growth.
  explicit TraceRecorder(std::size_t capacity = 1 << 20);

  void record(const TraceEvent& event);
  void clear() noexcept;

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

  /// Events of one kind, in time order.
  [[nodiscard]] std::vector<TraceEvent> ofKind(TraceEventKind kind) const;
  /// Events touching one thread, in time order.
  [[nodiscard]] std::vector<TraceEvent> ofThread(int threadId) const;
  /// Count of events of one kind.
  [[nodiscard]] std::size_t countOf(TraceEventKind kind) const;

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace dike::sim
