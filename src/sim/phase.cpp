#include "sim/phase.hpp"

#include <stdexcept>

namespace dike::sim {

double PhaseProgram::totalInstructions() const noexcept {
  double total = 0.0;
  for (const Phase& p : phases) total += p.instructions;
  return total;
}

double PhaseProgram::meanMemPerInstr() const noexcept {
  double total = 0.0;
  double weighted = 0.0;
  for (const Phase& p : phases) {
    total += p.instructions;
    weighted += p.instructions * p.memPerInstr;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

void PhaseProgram::validate() const {
  if (phases.empty())
    throw std::invalid_argument{"phase program has no phases"};
  for (const Phase& p : phases) {
    if (p.instructions <= 0.0)
      throw std::invalid_argument{"phase '" + p.name +
                                  "' has non-positive instruction budget"};
    if (p.memPerInstr < 0.0)
      throw std::invalid_argument{"phase '" + p.name +
                                  "' has negative memory intensity"};
    if (p.llcMissRatio < 0.0 || p.llcMissRatio > 1.0)
      throw std::invalid_argument{"phase '" + p.name +
                                  "' has miss ratio outside [0, 1]"};
    if (p.ipc <= 0.0)
      throw std::invalid_argument{"phase '" + p.name + "' has non-positive IPC"};
    if (p.workingSetMB < 0.0)
      throw std::invalid_argument{"phase '" + p.name +
                                  "' has negative working set"};
  }
  if (barrierEveryInstructions < 0.0)
    throw std::invalid_argument{"negative barrier interval"};
}

std::vector<Phase> repeatPattern(const std::vector<Phase>& pattern,
                                 int repeats) {
  if (repeats < 0) throw std::invalid_argument{"repeats must be >= 0"};
  std::vector<Phase> out;
  out.reserve(pattern.size() * static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i)
    out.insert(out.end(), pattern.begin(), pattern.end());
  return out;
}

}  // namespace dike::sim
