// The simulation engine: a heterogeneous multicore with a shared memory
// system, advanced in fixed 1 ms ticks.
//
// Per tick, every runnable thread computes an issue capacity from its core's
// frequency (shared with SMT siblings), presents its memory demand, the
// memory system arbitrates (sim/memory.hpp), and progress is the roofline
// minimum of compute capacity and served bandwidth. Phase transitions,
// barriers, migration stalls, and completion are handled inline.
//
// Schedulers interact through two surfaces only:
//   * sampleAndReset(): per-quantum performance-counter readings (with
//     configurable measurement noise) — the analogue of the hardware
//     counters the paper's Observer reads, and
//   * swapThreads()/migrateThread(): affinity manipulation — the analogue of
//     sched_setaffinity. Each migration costs a cache-warmth stall (swapOH).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/memory.hpp"
#include "sim/thread.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dike::ckpt {
class BinWriter;
class BinReader;
}  // namespace dike::ckpt

namespace dike::sim {

/// Engine tuning knobs.
struct MachineConfig {
  MemoryParams memory{};
  /// Issue-capacity floor for a vcore whose SMT sibling is fully issuing.
  /// The effective factor is utilisation-aware:
  ///   factor = 1 - (1 - smtSharedFactor) * siblingUtilisation,
  /// so a sibling stalled on memory (low utilisation) leaves most issue
  /// slots to its partner, as real SMT cores do.
  double smtSharedFactor = 0.68;
  /// Ticks a thread stalls after each migration (the paper's swapOH).
  util::Tick migrationStallTicks = 3;
  /// After the stall, the migrated thread runs with a cold cache for this
  /// many ticks: its LLC-missing traffic is multiplied by cacheColdFactor
  /// (private-cache contents must be refetched) and its issue rate by
  /// cacheColdSlowdown (refill stalls cost IPC even for compute-bound
  /// threads). This cache-warmth loss is what makes excessive migration
  /// expensive — the overhead DIO pays for swapping every quantum.
  util::Tick cacheColdTicks = 60;
  double cacheColdFactor = 2.0;
  double cacheColdSlowdown = 0.70;
  /// Shared last-level cache per socket (the paper's machine has 25 MB).
  /// When the working sets co-located on a socket exceed it, every thread
  /// there sees its LLC-missing traffic inflated by
  /// 1 + llcPressureFactor * (pressure - 1), capped at 2x.
  double llcPerSocketMB = 25.0;
  double llcPressureFactor = 0.2;
  /// Placement asymmetry: each (thread, socket) pair draws a persistent
  /// LLC-missing-traffic factor in [1-spread, 1+spread], modelling page,
  /// bank, and LLC-set conflicts that depend on where a thread runs. A
  /// static scheduler locks the draw in for the whole run; migration
  /// averages it out — the contention-driven unfairness the paper's
  /// schedulers exist to fix.
  double conflictSpread = 0.12;
  /// Multiplicative noise sigma applied to counter readings at sampling time.
  double measurementNoiseSigma = 0.01;
  /// Power model (energy is an extension metric, not in the paper): each
  /// physical core draws idlePowerW always, plus
  /// dynamicPowerW * (f/refFreqGhz)^3 * utilisation while executing.
  double idlePowerW = 2.0;
  double dynamicPowerW = 8.0;
  double refFreqGhz = 2.33;
  /// Event-batched stepping ("tick leaping"): when a computed tick proves
  /// that the next tick must be bit-identical (no phase crossing, barrier,
  /// finish, stall/cold expiry, or utilisation drift), stepUntil() replays
  /// the remaining ticks up to the next event horizon without recomputing
  /// them. Results are bit-identical to per-tick stepping by construction
  /// (see DESIGN.md "Event-batched time"); disable for debugging A/B runs.
  bool tickLeaping = true;
  /// Snap the per-tick issue utilisation to its previous value when it moves
  /// by at most this much. This lets the SMT feedback loop (utilisation ->
  /// sibling issue share -> utilisation) settle on an exact floating-point
  /// fixed point instead of converging geometrically forever, which is what
  /// makes ticks provably repeatable. The model error it introduces is
  /// bounded: utilisation only modulates the sibling issue share (factor
  /// (1 - smtSharedFactor) * eps ~ 3e-5 of capacity) and the dynamic power
  /// term, both far below the engine's measurement noise. Applied
  /// identically with and without tickLeaping, so the two modes stay
  /// bit-identical to each other.
  double utilizationSnapEpsilon = 1e-4;
  std::uint64_t seed = 1;
};

/// Counters for how simulated time was advanced (perf introspection).
struct StepStats {
  util::Tick computedTicks = 0;  ///< ticks evaluated with the full model
  util::Tick leapedTicks = 0;    ///< ticks replayed from a steady tick
};

/// One thread's counter reading for the last quantum.
struct ThreadSample {
  int threadId = -1;
  int processId = -1;
  int coreId = -1;
  double instructions = 0.0;  ///< retired during the quantum
  double accesses = 0.0;      ///< LLC-missing accesses during the quantum
  double accessRate = 0.0;    ///< accesses per second during the quantum
  double llcMissRatio = 0.0;  ///< classification signal (noisy)
  bool finished = false;
  /// True when the counter read for this thread was lost this quantum (a
  /// perf read failure on a live host, or injected by the fault layer). The
  /// numeric fields are then meaningless; consumers hold their last-known-
  /// good value instead of ingesting them.
  bool dropped = false;
};

/// Full counter snapshot for one quantum.
struct QuantumSample {
  util::Tick periodTicks = 0;
  std::vector<ThreadSample> threads;
  /// Achieved memory bandwidth per vcore (accesses/second) over the quantum.
  std::vector<double> coreAchievedBw;
};

class Machine {
 public:
  Machine(MachineTopology topology, MachineConfig config);

  /// Register a process with `threadCount` identical threads running
  /// `program`. Threads are created unplaced. Returns the process id.
  int addProcess(std::string name, PhaseProgram program, int threadCount,
                 bool memoryIntensive);

  /// Pin an unplaced thread to a free core (initial placement).
  void placeThread(int threadId, int coreId);

  /// Advance simulated time by one tick.
  void step();

  /// Advance simulated time to `target`, leaping over provably-identical
  /// ticks when config().tickLeaping is set (bit-identical to calling
  /// step() in a loop either way). Returns early once every thread has
  /// finished unless `stopWhenAllFinished` is false (dynamic workloads let
  /// time pass while waiting for future arrivals). Never steps past
  /// `target`, so callers may mutate the machine (swaps, DVFS, arrivals)
  /// exactly at the boundary.
  void stepUntil(util::Tick target, bool stopWhenAllFinished = true);

  [[nodiscard]] util::Tick now() const noexcept { return now_; }
  [[nodiscard]] bool allFinished() const noexcept;
  [[nodiscard]] int runningThreadCount() const noexcept;
  [[nodiscard]] StepStats stepStats() const noexcept { return stats_; }

  /// Exchange the cores of two live threads. Both threads incur the
  /// migration stall. Counts as one swap (a pair of migrations), matching
  /// the paper's Table III accounting.
  void swapThreads(int threadA, int threadB);

  /// Move one live thread to a free core (single migration, half a swap).
  void migrateThread(int threadId, int coreId);

  /// Suspension enforcement (the alternative Section III-E argues against):
  /// a suspended thread holds its core but makes no progress.
  void suspendThread(int threadId);
  void resumeThread(int threadId);
  [[nodiscard]] bool isSuspended(int threadId) const {
    return hot_.suspended.at(static_cast<std::size_t>(threadId)) != 0;
  }

  /// Read and reset per-quantum counters. Applies measurement noise.
  [[nodiscard]] QuantumSample sampleAndReset();

  /// sampleAndReset into a caller-owned sample whose vectors keep their
  /// capacity across quanta (the steady-state-allocation-free path). Draws
  /// the same RNG stream and produces the same values as sampleAndReset.
  void sampleAndResetInto(QuantumSample& out);

  /// DVFS: change a physical core's frequency at runtime (both SMT
  /// siblings are affected). The paper's testbed *is* such a setting — one
  /// socket pinned to minimum frequency, one to turbo — and Section III-A
  /// notes core capability is dynamic; this is the knob that makes it so.
  void setPhysicalCoreFrequency(int physicalCore, double freqGhz);
  /// Set every physical core of a socket at once.
  void setSocketFrequency(int socket, double freqGhz);
  /// Current effective frequency of a vcore (override or nominal).
  [[nodiscard]] double coreFrequencyGhz(int vcore) const;

  /// Total energy consumed so far (joules), per the MachineConfig power
  /// model. An extension metric for energy/fairness trade-off studies.
  [[nodiscard]] double energyJoules() const noexcept { return energyJ_; }

  // Introspection.
  [[nodiscard]] const MachineTopology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::span<const SimThread> threads() const noexcept {
    flushHotState();
    return threads_;
  }
  [[nodiscard]] std::span<const SimProcess> processes() const noexcept {
    return processes_;
  }
  [[nodiscard]] const SimThread& thread(int id) const {
    flushHotState();
    return threads_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const SimProcess& process(int id) const {
    return processes_.at(static_cast<std::size_t>(id));
  }
  /// Thread occupying a core, or -1.
  [[nodiscard]] int coreOccupant(int coreId) const {
    return coreToThread_.at(static_cast<std::size_t>(coreId));
  }
  /// Total swaps performed so far (each = one pair of migrations).
  [[nodiscard]] std::int64_t swapCount() const noexcept { return swapCount_; }
  [[nodiscard]] std::int64_t migrationCount() const noexcept {
    return migrationCount_;
  }

  /// Attach (or detach with nullptr) an event recorder. Off by default;
  /// recording costs one branch per event when disabled.
  void setTraceRecorder(TraceRecorder* recorder) noexcept {
    trace_ = recorder;
  }
  [[nodiscard]] TraceRecorder* traceRecorder() const noexcept {
    return trace_;
  }

  /// Serialize every piece of mutable simulation state — the clock, thread
  /// progress, placement, RNG stream (including per-thread socket-conflict
  /// draws, stored on the threads), counters, and energy — into the archive.
  /// Per-tick transients (scratch buffers, the intra-tick event flag) are
  /// rebuilt by the next step and are deliberately excluded.
  void saveState(ckpt::BinWriter& w) const;

  /// Restore state captured by saveState into a machine constructed with
  /// the same topology, config, processes, and threads (i.e. rebuilt from
  /// the same RunSpec). Validates thread/process identity before touching
  /// anything and throws ckpt::CheckpointError on any mismatch, so a failed
  /// load never leaves a partially-restored machine.
  void loadState(ckpt::BinReader& r);

 private:
  /// Result of evaluating one tick with the full model. `steady` means the
  /// next tick is provably bit-identical to this one until a time-based
  /// predicate (stall/cold expiry) flips or an external mutation arrives;
  /// `watts` is the power drawn, constant across the steady window.
  struct TickOutcome {
    bool steady = false;
    double watts = 0.0;
  };
  TickOutcome stepOnce();
  /// Largest n such that replaying the just-computed tick n times cannot
  /// cross any event (phase boundary, barrier, stall/cold expiry, target).
  [[nodiscard]] util::Tick leapHorizon(util::Tick target) const;
  /// Replay the just-computed steady tick n times: repeat exactly the
  /// per-accumulator additions per-tick stepping would perform, skipping
  /// the (unchanged) model evaluation.
  void replayTicks(util::Tick n, double watts);
  void advanceThread(int threadId, double executed, double accesses);
  void resolveBarriers();
  void finishThread(SimThread& t);
  void applyMigrationStall(SimThread& t, int fromCore);
  void emit(TraceEventKind kind, const SimThread& t, int fromCore = -1,
            int toCore = -1, int detail = 0);
  [[nodiscard]] bool isRunnable(const SimThread& t) const noexcept;
  [[nodiscard]] const Phase& currentPhase(const SimThread& t) const;

  // --- Structure-of-arrays hot state (see DESIGN.md "SoA hot path") ---
  // The per-tick loops stream over these parallel arrays, indexed by thread
  // id, instead of striding across SimThread objects. Two ownership classes:
  //   * accumulators — written every tick; the SoA copy is authoritative and
  //     the SimThread fields are flushed on demand (flushHotState);
  //   * mirrors/caches — placement, blocking flags, and phase-derived
  //     constants; the SimThread/process copy is authoritative and the array
  //     is refreshed at every (rare) mutation via syncHotThread.
  struct HotState {
    // Authoritative per-tick accumulators.
    std::vector<double> executed, phaseExecuted, quantumInstructions,
        quantumAccesses, totalAccesses, prevUtilization;
    std::vector<util::Tick> runnableTicks, stallTicks, barrierTicks,
        suspendedTicks, fastCoreTicks, slowCoreTicks;
    // Read-only mirrors of struct-authoritative fields.
    std::vector<int> coreId;
    std::vector<util::Tick> stallUntil, coldUntil;
    std::vector<std::uint8_t> suspended, waiting, finished;
    std::vector<int> barriersPassed;
    // Placement-derived caches (refreshed when coreId changes).
    std::vector<int> socket, physicalCore;
    std::vector<std::uint8_t> fastCore;
    std::vector<double> conflict;  ///< socketConflict[socket of coreId]
    // Phase-derived caches. Phase pointers stay valid across process-vector
    // reallocation because each PhaseProgram's phases buffer is moved, not
    // copied; they are refreshed on phase transitions and loadState.
    std::vector<const Phase*> phase;
    // Per-thread copies of per-process constants (barrier clipping inputs).
    std::vector<double> barrierEvery, totalInstructions;
  };
  /// Append SoA slots for a freshly constructed thread.
  void appendHotThread(const SimThread& t);
  /// Refresh a thread's mirrors and placement caches from its struct.
  void syncHotThread(int threadId);
  /// Refresh a thread's phase-pointer cache from its struct.
  void refreshPhaseCache(int threadId);
  /// Rebuild every SoA array from the structs (loadState).
  void rebuildHotState();
  /// Write the authoritative SoA accumulators back into the SimThread
  /// structs so external readers (reports, checkpoints, tests) see them.
  void flushHotState() const noexcept;

  MachineTopology topology_;
  MachineConfig config_;
  util::Rng rng_;

  // threads_ is mutable because the const accessors lazily flush the SoA
  // accumulators into the structs before handing them out.
  mutable std::vector<SimThread> threads_;
  std::vector<SimProcess> processes_;
  std::vector<int> coreToThread_;
  /// Ids of unfinished threads, ascending. Maintained on addProcess/finish
  /// so the per-tick loops skip finished threads without re-filtering;
  /// ascending order preserves the floating-point summation order of the
  /// all-threads loops it replaces.
  std::vector<int> liveThreads_;

  std::vector<double> physFreqGhz_;  // effective per-physical-core frequency
  TraceRecorder* trace_ = nullptr;
  util::Tick now_ = 0;
  util::Tick lastSampleTick_ = 0;
  std::vector<double> coreQuantumAccesses_;
  std::int64_t swapCount_ = 0;
  std::int64_t migrationCount_ = 0;
  double energyJ_ = 0.0;
  StepStats stats_;
  /// Set by advanceThread/finishThread/barrier handling during a tick:
  /// a structural event happened, so the next tick is not a repeat.
  bool tickHadEvent_ = false;

  HotState hot_;
  mutable bool hotDirty_ = false;

  // Scratch buffers reused across ticks to avoid per-tick allocation. The
  // active/executed/accesses triple doubles as the steady-tick record that
  // leapHorizon/replayTicks consume.
  std::vector<double> llcPressureScratch_;
  std::vector<MemoryDemand> demandScratch_;
  std::vector<double> smtLoadScratch_;
  std::vector<int> activeScratch_;
  std::vector<double> capScratch_;
  std::vector<double> executedScratch_;
  std::vector<double> accessesScratch_;
  std::vector<double> servedScratch_;
  ArbitrationScratch arbScratch_;

  /// LLC-pressure inflation factor per socket, cached across ticks: its
  /// inputs (which threads are resident where, and their phases' working
  /// sets) only change on placement, phase, membership, or restore events,
  /// all of which set llcDirty_. Recomputing would sum the same values in
  /// the same order, so the cache is bit-identical by construction.
  std::vector<double> llcFactor_;
  bool llcDirty_ = true;

  /// Memoized memory arbitration: when a computed tick presents bitwise-
  /// identical demands to the previous one (the active-set signature),
  /// arbitrateInto is a pure function of them and servedScratch_ is reused
  /// as-is instead of being recomputed.
  std::vector<MemoryDemand> prevDemands_;
  bool servedValid_ = false;
};

/// Quantum-driven policy hook: the bridge between the engine and the
/// scheduler layer (dike::sched adapts its Scheduler interface onto this).
class QuantumPolicy {
 public:
  virtual ~QuantumPolicy() = default;
  /// Current quantum length in ticks (adaptive policies may change it
  /// between invocations). Must be >= 1.
  [[nodiscard]] virtual util::Tick quantumTicks() const = 0;
  /// Invoked at every quantum boundary (and once at t=0 before stepping).
  virtual void onQuantum(Machine& machine) = 0;
};

struct RunLimits {
  util::Tick maxTicks = 4'000'000;  ///< safety net (~66 simulated minutes)
};

struct RunOutcome {
  util::Tick finishTick = 0;
  bool timedOut = false;
  /// True when the run ended early because util::stopRequested() (SIGINT /
  /// SIGTERM) was observed at a quantum boundary. The machine is left in a
  /// consistent state; telemetry sinks finalise via their destructors.
  bool stopped = false;
};

/// Drive the machine until every thread completes (or the tick limit hits),
/// invoking the policy at each quantum boundary.
RunOutcome runMachine(Machine& machine, QuantumPolicy& policy,
                      RunLimits limits = {});

/// Where in the quantum schedule a (possibly resumed) run stands.
/// `nextQuantumAt < 0` means a fresh run: the first deadline is
/// policy.quantumTicks(). A resumed run must supply the exact deadline the
/// checkpoint recorded — the drift-free schedule (`nextQuantumAt = max(prev
/// + quantum, now + 1)`) chains off the previous deadline, which is not
/// derivable from the clock under adaptive quanta.
struct RunCursor {
  std::int64_t quantumIndex = 0;
  util::Tick nextQuantumAt = -1;
};

/// Called after each quantum's onQuantum and deadline update, with the index
/// of the quantum that just completed and the next deadline — everything a
/// checkpoint needs to resume the loop bit-exactly.
using QuantumHook =
    std::function<void(Machine&, std::int64_t quantumIndex,
                       util::Tick nextQuantumAt)>;

/// runMachine with an explicit start cursor and an optional per-quantum
/// hook. The loop body is shared with the plain overload, so a resumed run
/// executes exactly the arithmetic an uninterrupted run would.
RunOutcome runMachine(Machine& machine, QuantumPolicy& policy,
                      RunLimits limits, RunCursor start,
                      const QuantumHook& afterQuantum);

}  // namespace dike::sim
