// Thread and process state owned by the simulation engine.
#pragma once

#include <string>
#include <vector>

#include "sim/phase.hpp"
#include "util/types.hpp"

namespace dike::sim {

/// Runtime state of one simulated thread. Plain data: the Machine engine is
/// the only mutator.
struct SimThread {
  int id = -1;
  int processId = -1;
  int indexInProcess = -1;

  // Progress.
  double executed = 0.0;       ///< instructions retired so far
  double phaseExecuted = 0.0;  ///< instructions retired in the current phase
  int phaseIndex = 0;

  // Placement.
  int coreId = -1;

  // Blocking conditions.
  util::Tick stallUntilTick = 0;  ///< migration (context-switch) stall
  util::Tick coldUntilTick = 0;   ///< elevated miss traffic after migration
  bool suspended = false;         ///< scheduler-imposed pause (Section III-E)
  bool waitingAtBarrier = false;
  int barriersPassed = 0;

  // Lifetime.
  util::Tick startTick = 0;  ///< tick the thread was first placed
  bool finished = false;
  util::Tick finishTick = -1;

  // Quantum accumulators (reset by Machine::sampleAndReset).
  double quantumInstructions = 0.0;
  double quantumAccesses = 0.0;

  // Lifetime totals.
  double totalAccesses = 0.0;
  int migrations = 0;
  util::Tick lastMigrationTick = -1;

  /// Per-socket LLC-missing-traffic factor (page/bank/set conflicts); drawn
  /// once per thread at creation. See MachineConfig::conflictSpread.
  std::vector<double> socketConflict;

  /// Issue-slot utilisation in the previous tick (executed / capacity).
  /// An SMT sibling stalled on memory leaves its slots to the partner.
  double prevUtilization = 0.0;

  // Time accounting (ticks spent in each state / on each core class).
  util::Tick runnableTicks = 0;
  util::Tick stallTicks = 0;        ///< blocked by migration stalls
  util::Tick barrierTicks = 0;      ///< blocked waiting at barriers
  util::Tick suspendedTicks = 0;    ///< paused by a suspension scheduler
  util::Tick fastCoreTicks = 0;     ///< runnable ticks on nominally fast cores
  util::Tick slowCoreTicks = 0;     ///< runnable ticks on nominally slow cores
};

/// One multi-threaded application (all threads share a phase program, as the
/// paper's data-parallel Rodinia benchmarks do).
struct SimProcess {
  int id = -1;
  std::string name;
  PhaseProgram program;
  /// Ground-truth label used only by workload construction and reports —
  /// schedulers never see it.
  bool memoryIntensive = false;
  std::vector<int> threadIds;
  util::Tick finishTick = -1;

  [[nodiscard]] bool finished() const noexcept { return finishTick >= 0; }
};

}  // namespace dike::sim
