#include "sim/topology.hpp"

#include <array>
#include <stdexcept>

namespace dike::sim {

MachineTopology::MachineTopology(std::span<const SocketSpec> sockets) {
  if (sockets.empty()) throw std::invalid_argument{"topology needs >= 1 socket"};
  int vcoreId = 0;
  int physId = 0;
  for (std::size_t s = 0; s < sockets.size(); ++s) {
    const SocketSpec& spec = sockets[s];
    if (spec.physicalCores <= 0 || spec.smtWays <= 0 || spec.freqGhz <= 0.0)
      throw std::invalid_argument{"invalid socket specification"};
    for (int p = 0; p < spec.physicalCores; ++p, ++physId) {
      physToVcores_.emplace_back();
      for (int t = 0; t < spec.smtWays; ++t, ++vcoreId) {
        CoreDesc core;
        core.id = vcoreId;
        core.socket = static_cast<int>(s);
        core.physicalCore = physId;
        core.smtIndex = t;
        core.type = spec.type;
        core.freqGhz = spec.freqGhz;
        cores_.push_back(core);
        physToVcores_.back().push_back(vcoreId);
        if (spec.type == CoreType::Fast) ++fastCount_;
      }
    }
  }
  socketCount_ = static_cast<int>(sockets.size());
  physicalCoreCount_ = physId;
}

MachineTopology MachineTopology::paperTestbed() {
  const std::array<SocketSpec, 2> sockets{
      SocketSpec{.physicalCores = 10, .smtWays = 2, .freqGhz = 2.33,
                 .type = CoreType::Fast},
      SocketSpec{.physicalCores = 10, .smtWays = 2, .freqGhz = 1.21,
                 .type = CoreType::Slow},
  };
  return MachineTopology{sockets};
}

MachineTopology MachineTopology::homogeneousTestbed() {
  const std::array<SocketSpec, 2> sockets{
      SocketSpec{.physicalCores = 10, .smtWays = 2, .freqGhz = 2.33,
                 .type = CoreType::Fast},
      SocketSpec{.physicalCores = 10, .smtWays = 2, .freqGhz = 2.33,
                 .type = CoreType::Fast},
  };
  return MachineTopology{sockets};
}

MachineTopology MachineTopology::smallTestbed(int coresPerSocket) {
  const std::array<SocketSpec, 2> sockets{
      SocketSpec{.physicalCores = coresPerSocket, .smtWays = 1,
                 .freqGhz = 2.33, .type = CoreType::Fast},
      SocketSpec{.physicalCores = coresPerSocket, .smtWays = 1,
                 .freqGhz = 1.21, .type = CoreType::Slow},
  };
  return MachineTopology{sockets};
}

std::span<const int> MachineTopology::smtGroup(int vcore) const {
  const CoreDesc& c = core(vcore);
  return physToVcores_.at(static_cast<std::size_t>(c.physicalCore));
}

}  // namespace dike::sim
