// QuantumArena: the reusable per-quantum scratch for the Dike pipeline.
//
// Observer -> Selector -> Predictor -> Decider all run once per scheduling
// quantum; the intermediate collections they need (the Observation snapshot,
// the Selector's candidate walks, the formed pairs, the Migrator's core and
// candidate lists) are identical in shape every time. Owning them in one
// arena that the scheduler carries across quanta makes the steady-state hot
// path allocation-free: every buffer is cleared — capacity retained — at
// the point of refill, never reallocated.
//
// Ownership rules:
//  * The arena is owned by the scheduler (one per DikeScheduler) and is
//    NEVER shared between schedulers — the buffers carry no information
//    across quanta, only capacity.
//  * Contents are valid only within the onQuantum call that filled them;
//    `candidates` holds pointers into the Observer's thread list, which the
//    next observe() invalidates.
//  * Nothing in here is serialized: a checkpoint restore starts with cold
//    (empty) buffers and the first post-restore quantum refills them,
//    which is behaviourally identical to the uninterrupted run.
#pragma once

#include <vector>

#include "core/observer.hpp"
#include "core/selector.hpp"

namespace dike::core {

struct QuantumArena {
  /// Snapshot refilled by makeObservationInto each quantum.
  Observation obs;
  /// Selector candidate-walk buffers (see SelectorScratch).
  SelectorScratch selector;
  /// Pairs formed by Selector::formPairsInto this quantum.
  std::vector<ThreadPair> pairs;
  /// Round-robin fallback: live, unsuspended occupants in core order.
  std::vector<int> occupants;
  /// Free-core migration: free high-/low-bandwidth core ids.
  std::vector<int> freeHigh;
  std::vector<int> freeLow;
  /// Free-core migration: promotion/demotion candidates (pointers into the
  /// Observer's current thread list).
  std::vector<const ThreadInfo*> candidates;
};

}  // namespace dike::core
