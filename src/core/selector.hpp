// Selector: fairness check and pair forming (Section III-B, Algorithm 1).
//
// When the system is unfair, the Selector walks the access-rate-sorted
// thread list from both ends: from the lowest rates it collects placement-
// rule violators occupying high-bandwidth cores (compute-classified
// threads), and from the highest rates violators stuck on low-bandwidth
// cores (memory-classified threads). Matched violators form <t_low, t_high>
// candidate pairs for the Predictor. When the placement rule is not
// satisfiable — more threads of one class than cores of the matching kind —
// the walk falls back to the extreme non-violators on each side, which
// rotates the over-subscribed class across core types so the rule holds
// "on average, across several quanta" (Section III-B).
#pragma once

#include <vector>

#include "core/observer.hpp"

namespace dike::core {

/// A candidate swap: the low-access and high-access thread ids.
struct ThreadPair {
  int lowThread = -1;
  int highThread = -1;

  [[nodiscard]] friend bool operator==(const ThreadPair&,
                                       const ThreadPair&) = default;
};

struct SelectorConfig {
  double fairnessThreshold = 0.03;
  bool rotateWhenNoViolator = true;
  /// Do not pair threads whose moving-mean rates differ by less than this
  /// relative margin — swapping equals is pure churn.
  double pairRateMargin = 0.03;
};

/// Reusable candidate-walk buffers for allocation-free pair forming. The
/// pointers held between calls are stale (they reference a previous
/// quantum's ThreadInfo list) but never read: every formPairsInto call
/// clears the vectors before use, so only their capacity survives.
struct SelectorScratch {
  std::vector<const ThreadInfo*> lows;
  std::vector<const ThreadInfo*> lowsRest;
  std::vector<const ThreadInfo*> highs;
  std::vector<const ThreadInfo*> highsRest;
};

class Selector {
 public:
  explicit Selector(SelectorConfig config = {});

  /// Algorithm 1. Returns at most swapSize/2 pairs (swapSize counts threads
  /// to migrate; each pair migrates two). Empty when the system is already
  /// fair or no eligible pairs exist. Every returned thread id is distinct.
  [[nodiscard]] std::vector<ThreadPair> formPairs(const Observer& observer,
                                                  int swapSize) const;

  /// Allocation-free formPairs: identical pair sequence, refilling `pairs`
  /// in place and reusing `scratch` across quanta.
  void formPairsInto(const Observer& observer, int swapSize,
                     SelectorScratch& scratch,
                     std::vector<ThreadPair>& pairs) const;

  [[nodiscard]] const SelectorConfig& config() const noexcept {
    return config_;
  }

 private:
  SelectorConfig config_;
};

}  // namespace dike::core
