#include "core/decider.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "ckpt/archive.hpp"
#include "util/types.hpp"

namespace dike::core {

Decider::Decider(DeciderConfig config) : config_(config) {
  if (config_.cooldownQuanta < 0)
    throw std::invalid_argument{"cooldownQuanta must be >= 0"};
  if (config_.minCooldownMs < 0)
    throw std::invalid_argument{"minCooldownMs must be >= 0"};
}

util::Tick Decider::cooldownWindow(util::Tick quantumTicks) const {
  if (config_.cooldownQuanta == 0 && config_.minCooldownMs == 0) return 0;
  const util::Tick quantaWindow =
      config_.cooldownQuanta * std::max<util::Tick>(1, quantumTicks) + 1;
  const util::Tick floorWindow = util::millisToTicks(config_.minCooldownMs);
  if (config_.cooldownQuanta == 0) return floorWindow;
  return std::max(quantaWindow, floorWindow);
}

bool Decider::shouldSwap(const SwapPrediction& prediction, util::Tick now,
                         util::Tick quantumTicks) const {
  if (inCooldown(prediction.pair.lowThread, now, quantumTicks) ||
      inCooldown(prediction.pair.highThread, now, quantumTicks))
    return false;
  if (config_.requirePositiveProfit && prediction.totalProfit < 0.0)
    return false;
  return true;
}

void Decider::recordSwap(const ThreadPair& pair, util::Tick now) {
  lastMigration_[pair.lowThread] = now;
  lastMigration_[pair.highThread] = now;
  failures_.erase(pair.lowThread);
  failures_.erase(pair.highThread);
}

void Decider::recordMigration(int threadId, util::Tick now) {
  lastMigration_[threadId] = now;
  failures_.erase(threadId);
}

void Decider::recordFailedActuation(int threadId, util::Tick now) {
  FailureState& f = failures_[threadId];
  f.at = now;
  f.consecutive = std::min(f.consecutive + 1, 8);
}

bool Decider::inRetryBackoff(int threadId, util::Tick now,
                             util::Tick quantumTicks) const {
  if (config_.failedActuationCooldownQuanta <= 0) return false;
  const auto it = failures_.find(threadId);
  if (it == failures_.end()) return false;
  const util::Tick window = config_.failedActuationCooldownQuanta *
                            it->second.consecutive *
                            std::max<util::Tick>(1, quantumTicks);
  return now - it->second.at <= window;
}

bool Decider::inCooldown(int threadId, util::Tick now,
                         util::Tick quantumTicks) const {
  const auto it = lastMigration_.find(threadId);
  if (it == lastMigration_.end()) return false;
  return now - it->second < cooldownWindow(quantumTicks);
}

void Decider::saveState(ckpt::BinWriter& w) const {
  w.beginSection("decider");
  {
    const std::map<int, util::Tick> sorted{lastMigration_.begin(),
                                           lastMigration_.end()};
    std::vector<std::int64_t> ids;
    std::vector<std::int64_t> ticks;
    for (const auto& [id, tick] : sorted) {
      ids.push_back(id);
      ticks.push_back(tick);
    }
    w.vecI64("migrationThreadIds", ids);
    w.vecI64("migrationTicks", ticks);
  }
  {
    const std::map<int, FailureState> sorted{failures_.begin(),
                                             failures_.end()};
    std::vector<std::int64_t> ids;
    std::vector<std::int64_t> ats;
    std::vector<std::int64_t> consecutives;
    for (const auto& [id, f] : sorted) {
      ids.push_back(id);
      ats.push_back(f.at);
      consecutives.push_back(f.consecutive);
    }
    w.vecI64("failureThreadIds", ids);
    w.vecI64("failureTicks", ats);
    w.vecI64("failureCounts", consecutives);
  }
  w.endSection();
}

void Decider::loadState(ckpt::BinReader& r) {
  r.beginSection("decider");
  const std::vector<std::int64_t> migIds = r.vecI64("migrationThreadIds");
  const std::vector<std::int64_t> migTicks = r.vecI64("migrationTicks");
  if (migIds.size() != migTicks.size())
    throw ckpt::CheckpointError{
        "decider checkpoint: migration id/tick lists disagree in length"};
  const std::vector<std::int64_t> failIds = r.vecI64("failureThreadIds");
  const std::vector<std::int64_t> failTicks = r.vecI64("failureTicks");
  const std::vector<std::int64_t> failCounts = r.vecI64("failureCounts");
  if (failIds.size() != failTicks.size() ||
      failIds.size() != failCounts.size())
    throw ckpt::CheckpointError{
        "decider checkpoint: failure id/tick/count lists disagree in length"};
  r.endSection();
  lastMigration_.clear();
  for (std::size_t i = 0; i < migIds.size(); ++i)
    lastMigration_[util::checkedInt<ckpt::CheckpointError>(
        migIds[i], "decider checkpoint: migration thread id")] = migTicks[i];
  failures_.clear();
  for (std::size_t i = 0; i < failIds.size(); ++i)
    failures_[util::checkedInt<ckpt::CheckpointError>(
        failIds[i], "decider checkpoint: failure thread id")] =
        FailureState{failTicks[i],
                     util::checkedInt<ckpt::CheckpointError>(
                         failCounts[i], "decider checkpoint: failure count")};
}

}  // namespace dike::core
