#include "core/decider.hpp"

#include <algorithm>
#include <stdexcept>

namespace dike::core {

Decider::Decider(DeciderConfig config) : config_(config) {
  if (config_.cooldownQuanta < 0)
    throw std::invalid_argument{"cooldownQuanta must be >= 0"};
  if (config_.minCooldownMs < 0)
    throw std::invalid_argument{"minCooldownMs must be >= 0"};
}

util::Tick Decider::cooldownWindow(util::Tick quantumTicks) const {
  if (config_.cooldownQuanta == 0 && config_.minCooldownMs == 0) return 0;
  const util::Tick quantaWindow =
      config_.cooldownQuanta * std::max<util::Tick>(1, quantumTicks) + 1;
  const util::Tick floorWindow = util::millisToTicks(config_.minCooldownMs);
  if (config_.cooldownQuanta == 0) return floorWindow;
  return std::max(quantaWindow, floorWindow);
}

bool Decider::shouldSwap(const SwapPrediction& prediction, util::Tick now,
                         util::Tick quantumTicks) const {
  if (inCooldown(prediction.pair.lowThread, now, quantumTicks) ||
      inCooldown(prediction.pair.highThread, now, quantumTicks))
    return false;
  if (config_.requirePositiveProfit && prediction.totalProfit < 0.0)
    return false;
  return true;
}

void Decider::recordSwap(const ThreadPair& pair, util::Tick now) {
  lastMigration_[pair.lowThread] = now;
  lastMigration_[pair.highThread] = now;
  failures_.erase(pair.lowThread);
  failures_.erase(pair.highThread);
}

void Decider::recordMigration(int threadId, util::Tick now) {
  lastMigration_[threadId] = now;
  failures_.erase(threadId);
}

void Decider::recordFailedActuation(int threadId, util::Tick now) {
  FailureState& f = failures_[threadId];
  f.at = now;
  f.consecutive = std::min(f.consecutive + 1, 8);
}

bool Decider::inRetryBackoff(int threadId, util::Tick now,
                             util::Tick quantumTicks) const {
  if (config_.failedActuationCooldownQuanta <= 0) return false;
  const auto it = failures_.find(threadId);
  if (it == failures_.end()) return false;
  const util::Tick window = config_.failedActuationCooldownQuanta *
                            it->second.consecutive *
                            std::max<util::Tick>(1, quantumTicks);
  return now - it->second.at <= window;
}

bool Decider::inCooldown(int threadId, util::Tick now,
                         util::Tick quantumTicks) const {
  const auto it = lastMigration_.find(threadId);
  if (it == lastMigration_.end()) return false;
  return now - it->second < cooldownWindow(quantumTicks);
}

}  // namespace dike::core
