#include "core/observer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "telemetry/registry.hpp"

namespace dike::core {

std::string_view toString(WorkloadType type) noexcept {
  switch (type) {
    case WorkloadType::Balanced: return "balanced";
    case WorkloadType::UnbalancedCompute: return "unbalanced-compute";
    case WorkloadType::UnbalancedMemory: return "unbalanced-memory";
  }
  return "?";
}

Observation makeObservation(const sched::SchedulerView& view) {
  Observation obs;
  obs.sample = view.sample();
  const int cores = view.coreCount();
  obs.coreOccupant.reserve(static_cast<std::size_t>(cores));
  obs.coreSocket.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    obs.coreOccupant.push_back(view.coreOccupant(c));
    obs.coreSocket.push_back(view.socketOf(c));
  }
  return obs;
}

Observer::Observer(ObserverConfig config) : config_(config) {}

void Observer::observe(const Observation& obs) {
  if (coreBwRaw_.empty()) {
    const std::size_t cores = obs.coreOccupant.size();
    coreBwRaw_.assign(cores, 0.0);
    coreBwEffective_.assign(cores, 0.0);
    highBandwidth_.assign(cores, false);
    if (config_.symmetricMovingMean)
      coreBwWindow_.assign(cores, util::MovingMean{config_.movingMeanWindow});
  }

  classifyThreads(obs.sample);
  updateCoreBw(obs);
  partitionCores(obs);
  computeUnfairness();
  classifyWorkload();
  ++observedQuanta_;
}

bool Observer::sanitize(const sim::ThreadSample& raw, double& accessRate,
                        double& llcMissRatio, int& staleAge) {
  const bool bad = raw.dropped || !std::isfinite(raw.accessRate) ||
                   raw.accessRate < 0.0 ||
                   raw.accessRate > config_.maxPlausibleRate ||
                   !std::isfinite(raw.llcMissRatio) || raw.llcMissRatio < 0.0;
  if (!bad) {
    accessRate = raw.accessRate;
    // A miss *ratio* cannot exceed 1; clamp rather than reject (saturated
    // counters still carry the "memory-bound" signal).
    llcMissRatio = std::min(raw.llcMissRatio, 1.0);
    staleAge = 0;
    lastGood_[raw.threadId] = HeldSample{accessRate, llcMissRatio, 0};
    return true;
  }
  if (!config_.sanitizeSamples) {
    // Hygiene off (ablation): dropped samples still cannot be ingested —
    // their fields are zeros, not measurements — but corrupt values pass.
    if (raw.dropped) {
      ++discardedSamples_;
      return false;
    }
    accessRate = raw.accessRate;
    llcMissRatio = raw.llcMissRatio;
    staleAge = 0;
    return true;
  }
  const auto it = lastGood_.find(raw.threadId);
  if (it == lastGood_.end() || it->second.age >= config_.maxSampleHoldQuanta) {
    // Nothing trustworthy to hold: treat the thread as unobserved this
    // quantum instead of feeding garbage into the moving means.
    ++discardedSamples_;
    DIKE_COUNTER("core.observer.sample_discarded");
    return false;
  }
  ++it->second.age;
  accessRate = it->second.accessRate;
  llcMissRatio = it->second.llcMissRatio;
  staleAge = it->second.age;
  ++heldSamples_;
  DIKE_COUNTER("core.observer.sample_held");
  return true;
}

void Observer::classifyThreads(const sim::QuantumSample& sample) {
  threads_.clear();
  memCount_ = 0;
  compCount_ = 0;
  // Guard zero-length quanta (adaptive policies can in principle sample
  // back-to-back): no time passed, so rates are undefined — skip the
  // cumulative-rate accrual rather than divide by zero.
  const double periodSec =
      sample.periodTicks > 0
          ? static_cast<double>(sample.periodTicks) * util::kTickSeconds
          : 0.0;
  for (const sim::ThreadSample& s : sample.threads) {
    if (s.finished || s.coreId < 0) continue;
    ThreadInfo info;
    info.threadId = s.threadId;
    info.processId = s.processId;
    info.coreId = s.coreId;
    if (!sanitize(s, info.accessRate, info.llcMissRatio, info.staleAge))
      continue;
    auto [it, inserted] = threadRate_.try_emplace(
        s.threadId, util::MovingMean{config_.threadRateWindow});
    it->second.add(info.accessRate);
    info.avgAccessRate = it->second.value();
    cumAccesses_[s.threadId] += info.accessRate * periodSec;
    cumSeconds_[s.threadId] += periodSec;
    info.cumAccessRate = cumSeconds_[s.threadId] > 0.0
                             ? cumAccesses_[s.threadId] /
                                   cumSeconds_[s.threadId]
                             : 0.0;
    info.cls = info.llcMissRatio > config_.llcMissThreshold
                   ? ThreadClass::Memory
                   : ThreadClass::Compute;
    (info.cls == ThreadClass::Memory ? memCount_ : compCount_) += 1;
    threads_.push_back(info);
  }

  // Deficits: starvation relative to sibling threads of the same process.
  std::map<int, util::OnlineStats> perProcess;
  for (const ThreadInfo& t : threads_)
    perProcess[t.processId].add(t.cumAccessRate);
  for (ThreadInfo& t : threads_) {
    const double mean = perProcess[t.processId].mean();
    t.deficit = mean > config_.processRateFloor
                    ? 1.0 - t.cumAccessRate / mean
                    : 0.0;
  }

  std::sort(threads_.begin(), threads_.end(),
            [](const ThreadInfo& a, const ThreadInfo& b) {
              if (a.avgAccessRate != b.avgAccessRate)
                return a.avgAccessRate < b.avgAccessRate;
              return a.threadId < b.threadId;
            });
}

void Observer::updateCoreBw(const Observation& obs) {
  // Per-core filter: rise immediately to demonstrated bandwidth, decay
  // slowly when the core hosts an undemanding thread.
  for (std::size_t c = 0; c < coreBwRaw_.size(); ++c) {
    const double achieved = obs.sample.coreAchievedBw[c];
    if (obs.coreOccupant[c] < 0 && achieved <= 0.0)
      continue;  // idle core: keep the last estimate
    if (config_.symmetricMovingMean) {
      coreBwWindow_[c].add(achieved);
      coreBwRaw_[c] = coreBwWindow_[c].value();
    } else if (achieved >= coreBwRaw_[c]) {
      coreBwRaw_[c] = achieved;
    } else {
      coreBwRaw_[c] = config_.coreBwDecay * coreBwRaw_[c] +
                      (1.0 - config_.coreBwDecay) * achieved;
    }
  }

  // Socket blending: a core can deliver at least `socketShare` of what the
  // best core on its (homogeneous-silicon) socket has demonstrated.
  int socketCount = 0;
  for (int s : obs.coreSocket) socketCount = std::max(socketCount, s + 1);
  std::vector<double> socketCap(static_cast<std::size_t>(socketCount), 0.0);
  for (std::size_t c = 0; c < coreBwRaw_.size(); ++c) {
    double& cap = socketCap[static_cast<std::size_t>(obs.coreSocket[c])];
    cap = std::max(cap, coreBwRaw_[c]);
  }
  for (std::size_t c = 0; c < coreBwRaw_.size(); ++c) {
    const double blended =
        config_.socketShare *
        socketCap[static_cast<std::size_t>(obs.coreSocket[c])];
    coreBwEffective_[c] = std::max(coreBwRaw_[c], blended);
  }
}

void Observer::partitionCores(const Observation& obs) {
  // Rank every core with a bandwidth estimate (occupied now, or exercised
  // earlier — a freed fast core keeps its capability); top half is "high
  // bandwidth".
  std::vector<int> known;
  known.reserve(coreBwEffective_.size());
  for (int c = 0; c < static_cast<int>(coreBwEffective_.size()); ++c) {
    if (obs.coreOccupant[static_cast<std::size_t>(c)] >= 0 ||
        coreBwEffective_[static_cast<std::size_t>(c)] > 0.0)
      known.push_back(c);
  }

  std::fill(highBandwidth_.begin(), highBandwidth_.end(), false);
  if (known.empty()) return;
  std::sort(known.begin(), known.end(), [this](int a, int b) {
    const double ea = coreBwEffective_[static_cast<std::size_t>(a)];
    const double eb = coreBwEffective_[static_cast<std::size_t>(b)];
    if (ea != eb) return ea > eb;
    return a < b;
  });
  const std::size_t highCount = (known.size() + 1) / 2;
  for (std::size_t i = 0; i < highCount; ++i)
    highBandwidth_[static_cast<std::size_t>(known[i])] = true;
}

void Observer::computeUnfairness() {
  // CV of cumulative access rates across each process's live threads:
  // homogeneous data-parallel threads should accumulate service equally.
  std::map<int, util::OnlineStats> perProcess;
  for (const ThreadInfo& t : threads_)
    perProcess[t.processId].add(t.cumAccessRate);

  // The signal is the *worst* process: one starving application is an
  // unfair system even when the others are uniform (a mean would dilute it
  // below theta_f).
  double worst = 0.0;
  for (const auto& [pid, stats] : perProcess) {
    if (stats.count() < 2) continue;
    if (stats.mean() < config_.processRateFloor) continue;  // noise-dominated
    worst = std::max(worst, stats.coefficientOfVariation());
  }
  unfairness_ = worst;
}

void Observer::classifyWorkload() {
  const int total = memCount_ + compCount_;
  if (total == 0) {
    type_ = WorkloadType::Balanced;
    return;
  }
  const double tolerance = config_.balanceTolerance * total;
  const int diff = memCount_ - compCount_;
  if (std::abs(diff) <= tolerance)
    type_ = WorkloadType::Balanced;
  else
    type_ = diff < 0 ? WorkloadType::UnbalancedCompute
                     : WorkloadType::UnbalancedMemory;
}

void Observer::resetClosedLoopState() {
  threadRate_.clear();
  lastGood_.clear();
  if (config_.symmetricMovingMean && !coreBwWindow_.empty()) {
    // Restart each window from the current effective estimate: the filter
    // forgets poisoned history without zeroing the capability map.
    for (std::size_t c = 0; c < coreBwWindow_.size(); ++c) {
      coreBwWindow_[c] = util::MovingMean{config_.movingMeanWindow};
      if (coreBwRaw_[c] > 0.0) coreBwWindow_[c].add(coreBwRaw_[c]);
    }
  }
  DIKE_COUNTER("core.observer.closed_loop_reset");
}

double Observer::coreBw(int coreId) const {
  return coreBwEffective_.at(static_cast<std::size_t>(coreId));
}

bool Observer::isHighBandwidthCore(int coreId) const {
  return highBandwidth_.at(static_cast<std::size_t>(coreId));
}

}  // namespace dike::core
