#include "core/observer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/state_io.hpp"
#include "telemetry/registry.hpp"

namespace dike::core {

std::string_view toString(WorkloadType type) noexcept {
  switch (type) {
    case WorkloadType::Balanced: return "balanced";
    case WorkloadType::UnbalancedCompute: return "unbalanced-compute";
    case WorkloadType::UnbalancedMemory: return "unbalanced-memory";
  }
  return "?";
}

Observation makeObservation(const sched::SchedulerView& view) {
  Observation obs;
  makeObservationInto(view, obs);
  return obs;
}

void makeObservationInto(const sched::SchedulerView& view, Observation& out) {
  // Copy-assignment into the existing sample reuses the capacity of its
  // per-thread and per-core vectors; the topology vectors likewise keep
  // theirs across clear().
  out.sample = view.sample();
  const int cores = view.coreCount();
  out.coreOccupant.clear();
  out.coreSocket.clear();
  out.coreOccupant.reserve(static_cast<std::size_t>(cores));
  out.coreSocket.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    out.coreOccupant.push_back(view.coreOccupant(c));
    out.coreSocket.push_back(view.socketOf(c));
  }
}

Observer::Observer(ObserverConfig config) : config_(config) {}

void Observer::observe(const Observation& obs) {
  if (coreBwRaw_.empty()) {
    const std::size_t cores = obs.coreOccupant.size();
    coreBwRaw_.assign(cores, 0.0);
    coreBwEffective_.assign(cores, 0.0);
    highBandwidth_.assign(cores, false);
    if (config_.symmetricMovingMean)
      coreBwWindow_.assign(cores, util::MovingMean{config_.movingMeanWindow});
  }

  classifyThreads(obs.sample);
  updateCoreBw(obs);
  partitionCores(obs);
  computeUnfairness();
  classifyWorkload();
  ++observedQuanta_;
}

bool Observer::sanitize(const sim::ThreadSample& raw, double& accessRate,
                        double& llcMissRatio, int& staleAge) {
  const bool bad = raw.dropped || !std::isfinite(raw.accessRate) ||
                   raw.accessRate < 0.0 ||
                   raw.accessRate > config_.maxPlausibleRate ||
                   !std::isfinite(raw.llcMissRatio) || raw.llcMissRatio < 0.0;
  if (!bad) {
    accessRate = raw.accessRate;
    // A miss *ratio* cannot exceed 1; clamp rather than reject (saturated
    // counters still carry the "memory-bound" signal).
    llcMissRatio = std::min(raw.llcMissRatio, 1.0);
    staleAge = 0;
    lastGood_[raw.threadId] = HeldSample{accessRate, llcMissRatio, 0};
    return true;
  }
  if (!config_.sanitizeSamples) {
    // Hygiene off (ablation): dropped samples still cannot be ingested —
    // their fields are zeros, not measurements — but corrupt values pass.
    if (raw.dropped) {
      ++discardedSamples_;
      return false;
    }
    accessRate = raw.accessRate;
    llcMissRatio = raw.llcMissRatio;
    staleAge = 0;
    return true;
  }
  const auto it = lastGood_.find(raw.threadId);
  if (it == lastGood_.end() || it->second.age >= config_.maxSampleHoldQuanta) {
    // Nothing trustworthy to hold: treat the thread as unobserved this
    // quantum instead of feeding garbage into the moving means.
    ++discardedSamples_;
    DIKE_COUNTER("core.observer.sample_discarded");
    return false;
  }
  ++it->second.age;
  accessRate = it->second.accessRate;
  llcMissRatio = it->second.llcMissRatio;
  staleAge = it->second.age;
  ++heldSamples_;
  DIKE_COUNTER("core.observer.sample_held");
  return true;
}

void Observer::classifyThreads(const sim::QuantumSample& sample) {
  threads_.clear();
  memCount_ = 0;
  compCount_ = 0;
  // Guard zero-length quanta (adaptive policies can in principle sample
  // back-to-back): no time passed, so rates are undefined — skip the
  // cumulative-rate accrual rather than divide by zero.
  const double periodSec =
      sample.periodTicks > 0
          ? static_cast<double>(sample.periodTicks) * util::kTickSeconds
          : 0.0;
  for (const sim::ThreadSample& s : sample.threads) {
    if (s.finished || s.coreId < 0) continue;
    ThreadInfo info;
    info.threadId = s.threadId;
    info.processId = s.processId;
    info.coreId = s.coreId;
    if (!sanitize(s, info.accessRate, info.llcMissRatio, info.staleAge))
      continue;
    auto [it, inserted] = threadRate_.try_emplace(
        s.threadId, util::MovingMean{config_.threadRateWindow});
    it->second.add(info.accessRate);
    info.avgAccessRate = it->second.value();
    cumAccesses_[s.threadId] += info.accessRate * periodSec;
    cumSeconds_[s.threadId] += periodSec;
    info.cumAccessRate = cumSeconds_[s.threadId] > 0.0
                             ? cumAccesses_[s.threadId] /
                                   cumSeconds_[s.threadId]
                             : 0.0;
    info.cls = info.llcMissRatio > config_.llcMissThreshold
                   ? ThreadClass::Memory
                   : ThreadClass::Compute;
    (info.cls == ThreadClass::Memory ? memCount_ : compCount_) += 1;
    threads_.push_back(info);
  }

  // Deficits: starvation relative to sibling threads of the same process.
  // Computed before the sort so the per-process accumulation order (sample
  // order) matches the historical behaviour exactly.
  accumulatePerProcess();
  for (ThreadInfo& t : threads_) {
    double mean = 0.0;
    for (const auto& [pid, stats] : perProcess_)
      if (pid == t.processId) {
        mean = stats.mean();
        break;
      }
    t.deficit = mean > config_.processRateFloor
                    ? 1.0 - t.cumAccessRate / mean
                    : 0.0;
  }

  const auto byRate = [](const ThreadInfo& a, const ThreadInfo& b) {
    if (a.avgAccessRate != b.avgAccessRate)
      return a.avgAccessRate < b.avgAccessRate;
    return a.threadId < b.threadId;
  };

  // Index the fresh (sample-order) list by id, then decide between the
  // incremental repair path and a full sort. Membership is unchanged when
  // the previous order has the same length and every id it names is still
  // live — distinct ids on both sides make that a bijection.
  int maxId = -1;
  for (const ThreadInfo& t : threads_) maxId = std::max(maxId, t.threadId);
  threadIndexById_.assign(static_cast<std::size_t>(maxId + 1), -1);
  for (int i = 0; i < util::isize(threads_); ++i)
    threadIndexById_[static_cast<std::size_t>(threads_[static_cast<std::size_t>(i)]
                                                  .threadId)] = i;
  bool sameMembership = prevOrder_.size() == threads_.size();
  if (sameMembership)
    for (int id : prevOrder_)
      if (id > maxId || threadIndexById_[static_cast<std::size_t>(id)] < 0) {
        sameMembership = false;
        break;
      }

  if (sameMembership) {
    // Rates drift slowly quantum to quantum, so the previous sorted order
    // is near-sorted for the new keys: permute into it and repair with an
    // adaptive insertion sort (O(n + inversions)). The comparator is a
    // strict total order, so this yields the identical sequence a full
    // sort would.
    DIKE_COUNTER("core.observer.sort_repair");
    orderScratch_.clear();
    for (int id : prevOrder_)
      orderScratch_.push_back(threads_[static_cast<std::size_t>(
          threadIndexById_[static_cast<std::size_t>(id)])]);
    threads_.swap(orderScratch_);
    for (std::size_t i = 1; i < threads_.size(); ++i) {
      ThreadInfo key = threads_[i];
      std::size_t j = i;
      while (j > 0 && byRate(key, threads_[j - 1])) {
        threads_[j] = threads_[j - 1];
        --j;
      }
      threads_[j] = key;
    }
  } else {
    DIKE_COUNTER("core.observer.sort_full");
    std::sort(threads_.begin(), threads_.end(), byRate);
  }
  recordThreadOrder();
}

void Observer::accumulatePerProcess() {
  perProcess_.clear();
  for (const ThreadInfo& t : threads_) {
    util::OnlineStats* stats = nullptr;
    for (auto& [pid, s] : perProcess_)
      if (pid == t.processId) {
        stats = &s;
        break;
      }
    if (stats == nullptr) {
      perProcess_.emplace_back(t.processId, util::OnlineStats{});
      stats = &perProcess_.back().second;
    }
    stats->add(t.cumAccessRate);
  }
}

void Observer::recordThreadOrder() {
  int maxId = -1;
  for (const ThreadInfo& t : threads_) maxId = std::max(maxId, t.threadId);
  threadIndexById_.assign(static_cast<std::size_t>(maxId + 1), -1);
  prevOrder_.clear();
  for (int i = 0; i < util::isize(threads_); ++i) {
    const ThreadInfo& t = threads_[static_cast<std::size_t>(i)];
    prevOrder_.push_back(t.threadId);
    threadIndexById_[static_cast<std::size_t>(t.threadId)] = i;
  }
}

const ThreadInfo* Observer::findThread(int threadId) const noexcept {
  if (threadId < 0 ||
      threadId >= static_cast<int>(threadIndexById_.size()))
    return nullptr;
  const int idx = threadIndexById_[static_cast<std::size_t>(threadId)];
  return idx >= 0 ? &threads_[static_cast<std::size_t>(idx)] : nullptr;
}

void Observer::updateCoreBw(const Observation& obs) {
  // Per-core filter: rise immediately to demonstrated bandwidth, decay
  // slowly when the core hosts an undemanding thread. Foreign cores (a
  // cluster-scoped view marks cores outside its domain with kForeignCore)
  // are skipped outright: their bandwidth belongs to another cluster's
  // observer and must not enter this one's estimates.
  for (std::size_t c = 0; c < coreBwRaw_.size(); ++c) {
    if (obs.coreOccupant[c] <= sched::SchedulerView::kForeignCore) continue;
    const double achieved = obs.sample.coreAchievedBw[c];
    if (obs.coreOccupant[c] < 0 && achieved <= 0.0)
      continue;  // idle core: keep the last estimate
    if (config_.symmetricMovingMean) {
      coreBwWindow_[c].add(achieved);
      coreBwRaw_[c] = coreBwWindow_[c].value();
    } else if (achieved >= coreBwRaw_[c]) {
      coreBwRaw_[c] = achieved;
    } else {
      coreBwRaw_[c] = config_.coreBwDecay * coreBwRaw_[c] +
                      (1.0 - config_.coreBwDecay) * achieved;
    }
  }

  // Socket blending: a core can deliver at least `socketShare` of what the
  // best core on its (homogeneous-silicon) socket has demonstrated.
  int socketCount = 0;
  for (int s : obs.coreSocket) socketCount = std::max(socketCount, s + 1);
  socketCapScratch_.assign(static_cast<std::size_t>(socketCount), 0.0);
  for (std::size_t c = 0; c < coreBwRaw_.size(); ++c) {
    if (obs.coreOccupant[c] <= sched::SchedulerView::kForeignCore) continue;
    double& cap = socketCapScratch_[static_cast<std::size_t>(obs.coreSocket[c])];
    cap = std::max(cap, coreBwRaw_[c]);
  }
  for (std::size_t c = 0; c < coreBwRaw_.size(); ++c) {
    if (obs.coreOccupant[c] <= sched::SchedulerView::kForeignCore) {
      // A socket may straddle a cluster boundary; blending must not leak
      // a neighbour cluster's capability onto cores this observer cannot
      // schedule.
      coreBwEffective_[c] = 0.0;
      continue;
    }
    const double blended =
        config_.socketShare *
        socketCapScratch_[static_cast<std::size_t>(obs.coreSocket[c])];
    coreBwEffective_[c] = std::max(coreBwRaw_[c], blended);
  }
}

void Observer::partitionCores(const Observation& obs) {
  // Rank every core with a bandwidth estimate (occupied now, or exercised
  // earlier — a freed fast core keeps its capability); top half is "high
  // bandwidth".
  std::vector<int>& known = knownScratch_;
  known.clear();
  known.reserve(coreBwEffective_.size());
  for (int c = 0; c < util::isize(coreBwEffective_); ++c) {
    const int occupant = obs.coreOccupant[static_cast<std::size_t>(c)];
    if (occupant <= sched::SchedulerView::kForeignCore)
      continue;  // another cluster's core: never rank it here
    if (occupant >= 0 || coreBwEffective_[static_cast<std::size_t>(c)] > 0.0)
      known.push_back(c);
  }

  std::fill(highBandwidth_.begin(), highBandwidth_.end(), false);
  if (known.empty()) return;
  std::sort(known.begin(), known.end(), [this](int a, int b) {
    const double ea = coreBwEffective_[static_cast<std::size_t>(a)];
    const double eb = coreBwEffective_[static_cast<std::size_t>(b)];
    if (ea != eb) return ea > eb;
    return a < b;
  });
  const std::size_t highCount = (known.size() + 1) / 2;
  for (std::size_t i = 0; i < highCount; ++i)
    highBandwidth_[static_cast<std::size_t>(known[i])] = true;
}

void Observer::computeUnfairness() {
  // CV of cumulative access rates across each process's live threads:
  // homogeneous data-parallel threads should accumulate service equally.
  accumulatePerProcess();

  // The signal is the *worst* process: one starving application is an
  // unfair system even when the others are uniform (a mean would dilute it
  // below theta_f).
  double worst = 0.0;
  for (const auto& [pid, stats] : perProcess_) {
    if (stats.count() < 2) continue;
    if (stats.mean() < config_.processRateFloor) continue;  // noise-dominated
    worst = std::max(worst, stats.coefficientOfVariation());
  }
  unfairness_ = worst;
}

void Observer::classifyWorkload() {
  const int total = memCount_ + compCount_;
  if (total == 0) {
    type_ = WorkloadType::Balanced;
    return;
  }
  const double tolerance = config_.balanceTolerance * total;
  const int diff = memCount_ - compCount_;
  if (std::abs(diff) <= tolerance)
    type_ = WorkloadType::Balanced;
  else
    type_ = diff < 0 ? WorkloadType::UnbalancedCompute
                     : WorkloadType::UnbalancedMemory;
}

void Observer::resetClosedLoopState() {
  threadRate_.clear();
  lastGood_.clear();
  if (config_.symmetricMovingMean && !coreBwWindow_.empty()) {
    // Restart each window from the current effective estimate: the filter
    // forgets poisoned history without zeroing the capability map.
    for (std::size_t c = 0; c < coreBwWindow_.size(); ++c) {
      coreBwWindow_[c] = util::MovingMean{config_.movingMeanWindow};
      if (coreBwRaw_[c] > 0.0) coreBwWindow_[c].add(coreBwRaw_[c]);
    }
  }
  DIKE_COUNTER("core.observer.closed_loop_reset");
}

double Observer::coreBw(int coreId) const {
  return coreBwEffective_.at(static_cast<std::size_t>(coreId));
}

bool Observer::isHighBandwidthCore(int coreId) const {
  return highBandwidth_.at(static_cast<std::size_t>(coreId));
}

namespace {

/// Serialize an int-keyed map in ascending key order (the maps are
/// lookup-only, so insertion order carries no state; sorting makes the
/// byte stream deterministic).
template <typename V>
std::map<int, V> sorted(const std::unordered_map<int, V>& m) {
  return std::map<int, V>{m.begin(), m.end()};
}

}  // namespace

void Observer::saveState(ckpt::BinWriter& w) const {
  w.beginSection("observer");
  w.i64("observedQuanta", observedQuanta_);
  w.i64("heldSamples", heldSamples_);
  w.i64("discardedSamples", discardedSamples_);
  w.f64("unfairness", unfairness_);
  w.i64("workloadType", static_cast<std::int64_t>(type_));
  w.i64("memCount", memCount_);
  w.i64("compCount", compCount_);

  w.i64("threadInfoCount", util::isize(threads_));
  for (const ThreadInfo& t : threads_) {
    w.beginSection("info");
    w.i64("threadId", t.threadId);
    w.i64("processId", t.processId);
    w.i64("coreId", t.coreId);
    w.f64("accessRate", t.accessRate);
    w.f64("avgAccessRate", t.avgAccessRate);
    w.f64("cumAccessRate", t.cumAccessRate);
    w.f64("deficit", t.deficit);
    w.f64("llcMissRatio", t.llcMissRatio);
    w.i64("class", static_cast<std::int64_t>(t.cls));
    w.i64("staleAge", t.staleAge);
    w.endSection();
  }

  const auto rates = sorted(threadRate_);
  w.i64("threadRateCount", static_cast<std::int64_t>(rates.size()));
  for (const auto& [id, mm] : rates) {
    w.beginSection("rate");
    w.i64("threadId", id);
    ckpt::save(w, "window", mm);
    w.endSection();
  }

  const auto holds = sorted(lastGood_);
  w.i64("holdCount", static_cast<std::int64_t>(holds.size()));
  for (const auto& [id, h] : holds) {
    w.beginSection("hold");
    w.i64("threadId", id);
    w.f64("accessRate", h.accessRate);
    w.f64("llcMissRatio", h.llcMissRatio);
    w.i64("age", h.age);
    w.endSection();
  }

  {
    std::vector<std::int64_t> ids;
    std::vector<double> accesses;
    std::vector<double> seconds;
    for (const auto& [id, v] : sorted(cumAccesses_)) {
      ids.push_back(id);
      accesses.push_back(v);
      seconds.push_back(cumSeconds_.count(id) != 0 ? cumSeconds_.at(id) : 0.0);
    }
    w.vecI64("cumThreadIds", ids);
    w.vecF64("cumAccesses", accesses);
    w.vecF64("cumSeconds", seconds);
  }

  w.vecF64("coreBwRaw", coreBwRaw_);
  w.vecF64("coreBwEffective", coreBwEffective_);
  w.i64("coreBwWindowCount", util::isize(coreBwWindow_));
  for (const util::MovingMean& mm : coreBwWindow_)
    ckpt::save(w, "coreBwWindow", mm);
  std::vector<std::int64_t> high(highBandwidth_.size());
  for (std::size_t i = 0; i < highBandwidth_.size(); ++i)
    high[i] = highBandwidth_[i] ? 1 : 0;
  w.vecI64("highBandwidth", high);
  w.endSection();
}

void Observer::loadState(ckpt::BinReader& r) {
  Observer fresh{config_};
  r.beginSection("observer");
  fresh.observedQuanta_ = r.i64("observedQuanta");
  fresh.heldSamples_ = r.i64("heldSamples");
  fresh.discardedSamples_ = r.i64("discardedSamples");
  fresh.unfairness_ = r.f64("unfairness");
  fresh.type_ = static_cast<WorkloadType>(r.i64("workloadType"));
  fresh.memCount_ = static_cast<int>(r.i64("memCount"));
  fresh.compCount_ = static_cast<int>(r.i64("compCount"));

  const std::int64_t infoCount = r.i64("threadInfoCount");
  fresh.threads_.reserve(static_cast<std::size_t>(infoCount));
  for (std::int64_t i = 0; i < infoCount; ++i) {
    r.beginSection("info");
    ThreadInfo t;
    t.threadId = static_cast<int>(r.i64("threadId"));
    t.processId = static_cast<int>(r.i64("processId"));
    t.coreId = static_cast<int>(r.i64("coreId"));
    t.accessRate = r.f64("accessRate");
    t.avgAccessRate = r.f64("avgAccessRate");
    t.cumAccessRate = r.f64("cumAccessRate");
    t.deficit = r.f64("deficit");
    t.llcMissRatio = r.f64("llcMissRatio");
    t.cls = static_cast<ThreadClass>(r.i64("class"));
    t.staleAge = static_cast<int>(r.i64("staleAge"));
    r.endSection();
    fresh.threads_.push_back(t);
  }

  const std::int64_t rateCount = r.i64("threadRateCount");
  for (std::int64_t i = 0; i < rateCount; ++i) {
    r.beginSection("rate");
    const int id = static_cast<int>(r.i64("threadId"));
    util::MovingMean mm{config_.threadRateWindow};
    ckpt::load(r, "window", mm);
    r.endSection();
    fresh.threadRate_.emplace(id, std::move(mm));
  }

  const std::int64_t holdCount = r.i64("holdCount");
  for (std::int64_t i = 0; i < holdCount; ++i) {
    r.beginSection("hold");
    const int id = static_cast<int>(r.i64("threadId"));
    HeldSample h;
    h.accessRate = r.f64("accessRate");
    h.llcMissRatio = r.f64("llcMissRatio");
    h.age = static_cast<int>(r.i64("age"));
    r.endSection();
    fresh.lastGood_.emplace(id, h);
  }

  const std::vector<std::int64_t> cumIds = r.vecI64("cumThreadIds");
  const std::vector<double> cumAccesses = r.vecF64("cumAccesses");
  const std::vector<double> cumSeconds = r.vecF64("cumSeconds");
  if (cumIds.size() != cumAccesses.size() ||
      cumIds.size() != cumSeconds.size())
    throw ckpt::CheckpointError{
        "observer checkpoint: cumulative id/accesses/seconds lists disagree "
        "in length"};
  for (std::size_t i = 0; i < cumIds.size(); ++i) {
    fresh.cumAccesses_[static_cast<int>(cumIds[i])] = cumAccesses[i];
    fresh.cumSeconds_[static_cast<int>(cumIds[i])] = cumSeconds[i];
  }

  fresh.coreBwRaw_ = r.vecF64("coreBwRaw");
  fresh.coreBwEffective_ = r.vecF64("coreBwEffective");
  const std::int64_t windowCount = r.i64("coreBwWindowCount");
  fresh.coreBwWindow_.reserve(static_cast<std::size_t>(windowCount));
  for (std::int64_t i = 0; i < windowCount; ++i) {
    util::MovingMean mm{config_.movingMeanWindow};
    ckpt::load(r, "coreBwWindow", mm);
    fresh.coreBwWindow_.push_back(std::move(mm));
  }
  const std::vector<std::int64_t> high = r.vecI64("highBandwidth");
  fresh.highBandwidth_.resize(high.size());
  for (std::size_t i = 0; i < high.size(); ++i)
    fresh.highBandwidth_[i] = high[i] != 0;
  r.endSection();

  *this = std::move(fresh);
  // The order/index caches are never serialized (pure scratch); rebuild
  // them from the restored thread list so findThread and the sort-repair
  // path work from the first post-restore quantum — exactly as they would
  // have in the uninterrupted run.
  recordThreadOrder();
}

}  // namespace dike::core
