// Observer: thread classification and core identification (Section III-A).
//
// Per quantum the Observer reads each thread's memory access rate and LLC
// miss ratio from the counter sample, classifies threads as memory- or
// compute-intensive, maintains the per-core CoreBW bandwidth estimate, and
// partitions cores into higher- and lower-bandwidth halves. It also
// computes the current system fairness signal and the online workload-class
// estimate the Optimizer keys on.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "sched/scheduler.hpp"
#include "util/stats.hpp"

namespace dike::core {

/// One quantum's raw observations, backend-independent: the simulator's
/// SchedulerView produces one per quantum, and the Linux host driver builds
/// the same struct from /proc + perf counters — so the entire Dike pipeline
/// is reusable on live systems.
struct Observation {
  sim::QuantumSample sample;
  std::vector<int> coreOccupant;  ///< thread id per core, -1 when free
  std::vector<int> coreSocket;    ///< socket id per core
};

/// Build an Observation from a simulator scheduler view.
[[nodiscard]] Observation makeObservation(const sched::SchedulerView& view);

/// Allocation-free makeObservation: refills `out` in place so its vectors
/// (and the sample's per-thread rows) keep their capacity across quanta.
void makeObservationInto(const sched::SchedulerView& view, Observation& out);

enum class ThreadClass { Compute, Memory };

/// Online estimate of the workload mix (Section III-F). This mirrors the
/// evaluation's B/UC/UM taxonomy but is inferred from counters, never from
/// ground truth.
enum class WorkloadType { Balanced, UnbalancedCompute, UnbalancedMemory };

[[nodiscard]] std::string_view toString(WorkloadType type) noexcept;

/// Observer's view of one live thread this quantum.
struct ThreadInfo {
  int threadId = -1;
  int processId = -1;
  int coreId = -1;
  double accessRate = 0.0;     ///< accesses per second, last quantum
  double avgAccessRate = 0.0;  ///< moving mean over threadRateWindow quanta
  double cumAccessRate = 0.0;  ///< accesses per second over the whole run
  /// Relative starvation versus the process mean cumulative rate:
  /// positive = this thread has been served less than its siblings,
  /// negative = more. Homogeneous threads with equal deficits will have
  /// equal completion times — deficit is the live analogue of Eqn 4.
  double deficit = 0.0;
  double llcMissRatio = 0.0;   ///< misses / accesses, last quantum
  ThreadClass cls = ThreadClass::Compute;
  /// Quanta since the thread's last trustworthy counter reading. 0 = this
  /// quantum's sample was good; N > 0 = the rate/miss-ratio fields above are
  /// a last-known-good hold that is N quanta stale (sample sanitization).
  int staleAge = 0;
};

class Observer {
 public:
  explicit Observer(ObserverConfig config = {});

  /// Ingest one quantum's counter sample.
  void observe(const Observation& obs);

  /// True once at least one quantum has been observed.
  [[nodiscard]] bool ready() const noexcept { return observedQuanta_ > 0; }
  [[nodiscard]] std::int64_t observedQuanta() const noexcept {
    return observedQuanta_;
  }

  /// Live threads observed in the most recent quantum, sorted by ascending
  /// access rate (the order the Selector consumes).
  [[nodiscard]] const std::vector<ThreadInfo>& threadsByAccessRate()
      const noexcept {
    return threads_;
  }

  /// O(1) lookup into threadsByAccessRate() by thread id, or nullptr when
  /// the thread was not observed in the most recent quantum. The pointer is
  /// invalidated by the next observe()/loadState() call.
  [[nodiscard]] const ThreadInfo* findThread(int threadId) const noexcept;

  /// CoreBW: the capability estimate for a core (accesses/second).
  [[nodiscard]] double coreBw(int coreId) const;

  /// Core identification: true if the core is in the higher-bandwidth half
  /// of currently occupied cores.
  [[nodiscard]] bool isHighBandwidthCore(int coreId) const;

  /// Fairness signal: the worst, over processes with at least two live
  /// threads (and a mean access rate above processRateFloor), coefficient
  /// of variation of their threads' cumulative access rates. Zero when
  /// every such group is uniform (fair). Homogeneous (data-parallel)
  /// threads should accumulate service at equal rates — and access rate
  /// tracks progress on heterogeneous cores where IPC misleads (Section
  /// III-A) — so divergence means some threads are being starved and will
  /// finish late (exactly what Eqn 4 penalises).
  [[nodiscard]] double systemUnfairness() const noexcept {
    return unfairness_;
  }

  [[nodiscard]] WorkloadType workloadType() const noexcept { return type_; }
  [[nodiscard]] int memoryThreadCount() const noexcept { return memCount_; }
  [[nodiscard]] int computeThreadCount() const noexcept { return compCount_; }

  [[nodiscard]] const ObserverConfig& config() const noexcept {
    return config_;
  }

  /// Samples replaced by a last-known-good hold so far (sanitization).
  [[nodiscard]] std::int64_t heldSamples() const noexcept {
    return heldSamples_;
  }
  /// Samples discarded because no hold was available (or it went stale).
  [[nodiscard]] std::int64_t discardedSamples() const noexcept {
    return discardedSamples_;
  }

  /// Divergence-watchdog recovery: drop every closed-loop estimate that a
  /// corrupt counter feed can poison — per-thread rate windows, CoreBW
  /// filters (current effective values are kept as the restart point so the
  /// core partition does not collapse), and the last-known-good holds.
  /// Whole-run progress accounting (cumulative accesses/seconds, the
  /// fairness signal's input) is deliberately preserved.
  void resetClosedLoopState();

  /// Serialize every mutable estimate — the closed-loop filters, sanitization
  /// holds, cumulative progress accounting, and the core partition. The
  /// moving-window filters carry their raw running sums (path dependent), so
  /// restore is bit-exact.
  void saveState(ckpt::BinWriter& w) const;
  void loadState(ckpt::BinReader& r);

 private:
  void updateCoreBw(const Observation& obs);
  void classifyThreads(const sim::QuantumSample& sample);
  void partitionCores(const Observation& obs);
  void computeUnfairness();
  void classifyWorkload();
  /// Accumulate per-process OnlineStats of cumAccessRate over threads_ in
  /// its current iteration order, into the reusable flat scratch.
  void accumulatePerProcess();
  /// Rebuild prevOrder_ and threadIndexById_ from the (sorted) threads_.
  void recordThreadOrder();

  ObserverConfig config_;
  std::int64_t observedQuanta_ = 0;

  /// Last trustworthy reading per thread, for the sanitization hold.
  struct HeldSample {
    double accessRate = 0.0;
    double llcMissRatio = 0.0;
    int age = 0;  ///< quanta since the reading was taken
  };
  /// Sanitized copy of one raw sample, or nullopt to skip the thread.
  [[nodiscard]] bool sanitize(const sim::ThreadSample& raw,
                              double& accessRate, double& llcMissRatio,
                              int& staleAge);

  std::vector<ThreadInfo> threads_;       // live, ascending avg access rate
  std::unordered_map<int, util::MovingMean> threadRate_;
  std::unordered_map<int, HeldSample> lastGood_;
  std::int64_t heldSamples_ = 0;
  std::int64_t discardedSamples_ = 0;
  std::unordered_map<int, double> cumAccesses_;
  std::unordered_map<int, double> cumSeconds_;
  std::vector<double> coreBwRaw_;         // per-core filtered estimate
  std::vector<double> coreBwEffective_;   // after socket blending
  std::vector<util::MovingMean> coreBwWindow_;  // symmetric variant storage
  std::vector<bool> highBandwidth_;
  double unfairness_ = 0.0;
  WorkloadType type_ = WorkloadType::Balanced;
  int memCount_ = 0;
  int compCount_ = 0;

  // --- Reusable per-quantum scratch (never serialized; pure caches). ---
  /// (processId, stats) pairs, first-encounter order. A flat vector beats a
  /// node-based map here: a handful of processes, scanned linearly, zero
  /// steady-state allocation. Accumulation order per process is unchanged
  /// from the historical std::map version (encounter order), and the
  /// unfairness reduction is a max — order-independent — so the fairness
  /// signal stays bit-identical.
  std::vector<std::pair<int, util::OnlineStats>> perProcess_;
  /// Thread ids in the previous quantum's sorted order. When the live set
  /// is unchanged, threads_ is permuted into this order and repaired with
  /// an adaptive insertion sort instead of a full re-sort; the comparator
  /// (avgAccessRate, threadId) is a strict total order, so every sorting
  /// algorithm produces the one and only sorted sequence — the repair path
  /// is bit-identical to the full sort by construction.
  std::vector<int> prevOrder_;
  std::vector<ThreadInfo> orderScratch_;  ///< permutation staging buffer
  /// Dense threadId -> index into threads_ (-1 when absent); backs
  /// findThread and the membership check of the sort-repair path.
  std::vector<int> threadIndexById_;
  std::vector<double> socketCapScratch_;  ///< updateCoreBw per-socket maxima
  std::vector<int> knownScratch_;         ///< partitionCores ranking buffer
};

}  // namespace dike::core
