#include "core/prediction_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dike::core {

void PredictionTracker::setPrediction(int threadId, double predictedRate) {
  pending_[threadId] = predictedRate;
}

void PredictionTracker::setPredictionIfAbsent(int threadId,
                                              double predictedRate) {
  pending_.try_emplace(threadId, predictedRate);
}

void PredictionTracker::scoreQuantum(const sim::QuantumSample& sample,
                                     util::Tick now) {
  util::OnlineStats quantum;
  lastScored_.clear();
  for (const sim::ThreadSample& s : sample.threads) {
    const auto it = pending_.find(s.threadId);
    if (it == pending_.end()) continue;
    if (s.finished) continue;
    const double actual = s.accessRate;
    const double predicted = it->second;
    if (actual < kMinScoredRate || predicted < kMinScoredRate) {
      lastScored_.push_back(ScoredPrediction{
          s.threadId, predicted, actual,
          std::numeric_limits<double>::quiet_NaN()});
      continue;
    }
    const double error =
        (predicted - actual) / std::max(actual, kDenominatorFloor);
    lastScored_.push_back(ScoredPrediction{s.threadId, predicted, actual,
                                           error});
    quantum.add(error);
    overall_.add(error);
    auto [threadIt, inserted] = perThread_.try_emplace(s.threadId);
    if (inserted) threadOrder_.push_back(s.threadId);
    threadIt->second.add(error);
  }
  pending_.clear();

  if (quantum.count() > 0) {
    trace_.push_back(PredictionErrorPoint{
        now, static_cast<int>(quantum.count()), quantum.mean(), quantum.min(),
        quantum.max()});
  }

  if (watchdogArmed_ && quantum.count() >= 2) {
    if (std::abs(quantum.mean()) >= watchdogThreshold_)
      ++divergenceStreak_;
    else
      divergenceStreak_ = 0;
    if (divergenceStreak_ >= watchdogQuanta_) diverged_ = true;
  }
}

void PredictionTracker::armDivergenceWatchdog(double errorThreshold,
                                              int quanta) {
  watchdogArmed_ = errorThreshold > 0.0 && quanta > 0;
  watchdogThreshold_ = errorThreshold;
  watchdogQuanta_ = quanta;
  divergenceStreak_ = 0;
  diverged_ = false;
}

std::vector<double> PredictionTracker::perThreadMeanErrors() const {
  std::vector<double> means;
  means.reserve(threadOrder_.size());
  for (int id : threadOrder_) means.push_back(perThread_.at(id).mean());
  return means;
}

void PredictionTracker::reset() {
  pending_.clear();
  perThread_.clear();
  threadOrder_.clear();
  trace_.clear();
  lastScored_.clear();
  overall_.reset();
  divergenceStreak_ = 0;
  diverged_ = false;
}

}  // namespace dike::core
