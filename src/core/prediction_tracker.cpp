#include "core/prediction_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "ckpt/state_io.hpp"

namespace dike::core {

void PredictionTracker::setPrediction(int threadId, double predictedRate) {
  pending_[threadId] = predictedRate;
}

void PredictionTracker::setPredictionIfAbsent(int threadId,
                                              double predictedRate) {
  pending_.try_emplace(threadId, predictedRate);
}

void PredictionTracker::scoreQuantum(const sim::QuantumSample& sample,
                                     util::Tick now) {
  util::OnlineStats quantum;
  lastScored_.clear();
  for (const sim::ThreadSample& s : sample.threads) {
    const auto it = pending_.find(s.threadId);
    if (it == pending_.end()) continue;
    if (s.finished) continue;
    const double actual = s.accessRate;
    const double predicted = it->second;
    if (actual < kMinScoredRate || predicted < kMinScoredRate) {
      lastScored_.push_back(ScoredPrediction{
          s.threadId, predicted, actual,
          std::numeric_limits<double>::quiet_NaN()});
      continue;
    }
    const double error =
        (predicted - actual) / std::max(actual, kDenominatorFloor);
    lastScored_.push_back(ScoredPrediction{s.threadId, predicted, actual,
                                           error});
    quantum.add(error);
    overall_.add(error);
    auto [threadIt, inserted] = perThread_.try_emplace(s.threadId);
    if (inserted) threadOrder_.push_back(s.threadId);
    threadIt->second.add(error);
  }
  pending_.clear();

  if (quantum.count() > 0) {
    trace_.push_back(PredictionErrorPoint{
        now, static_cast<int>(quantum.count()), quantum.mean(), quantum.min(),
        quantum.max()});
  }

  if (watchdogArmed_ && quantum.count() >= 2) {
    if (std::abs(quantum.mean()) >= watchdogThreshold_)
      ++divergenceStreak_;
    else
      divergenceStreak_ = 0;
    if (divergenceStreak_ >= watchdogQuanta_) diverged_ = true;
  }
}

void PredictionTracker::armDivergenceWatchdog(double errorThreshold,
                                              int quanta) {
  watchdogArmed_ = errorThreshold > 0.0 && quanta > 0;
  watchdogThreshold_ = errorThreshold;
  watchdogQuanta_ = quanta;
  divergenceStreak_ = 0;
  diverged_ = false;
}

std::vector<double> PredictionTracker::perThreadMeanErrors() const {
  std::vector<double> means;
  means.reserve(threadOrder_.size());
  for (int id : threadOrder_) means.push_back(perThread_.at(id).mean());
  return means;
}

void PredictionTracker::reset() {
  pending_.clear();
  perThread_.clear();
  threadOrder_.clear();
  trace_.clear();
  lastScored_.clear();
  overall_.reset();
  divergenceStreak_ = 0;
  diverged_ = false;
}

void PredictionTracker::saveState(ckpt::BinWriter& w) const {
  w.beginSection("predictionTracker");
  {
    const std::map<int, double> pending{pending_.begin(), pending_.end()};
    std::vector<std::int64_t> ids;
    std::vector<double> rates;
    for (const auto& [id, rate] : pending) {
      ids.push_back(id);
      rates.push_back(rate);
    }
    w.vecI64("pendingThreadIds", ids);
    w.vecF64("pendingRates", rates);
  }
  // threadOrder_ is first-appearance order; perThread_ keys are a subset of
  // it plus any thread scored before the order vector existed, so persist
  // the aggregates keyed explicitly.
  {
    std::vector<std::int64_t> order{threadOrder_.begin(), threadOrder_.end()};
    w.vecI64("threadOrder", order);
  }
  {
    const std::map<int, util::OnlineStats> perThread{perThread_.begin(),
                                                     perThread_.end()};
    w.i64("perThreadCount", static_cast<std::int64_t>(perThread.size()));
    for (const auto& [id, stats] : perThread) {
      w.beginSection("perThread");
      w.i64("threadId", id);
      ckpt::save(w, "stats", stats);
      w.endSection();
    }
  }
  w.i64("traceCount", util::isize(trace_));
  for (const PredictionErrorPoint& p : trace_) {
    w.beginSection("point");
    w.i64("tick", p.tick);
    w.i64("samples", p.samples);
    w.f64("mean", p.mean);
    w.f64("min", p.min);
    w.f64("max", p.max);
    w.endSection();
  }
  w.i64("lastScoredCount", util::isize(lastScored_));
  for (const ScoredPrediction& s : lastScored_) {
    w.beginSection("scored");
    w.i64("threadId", s.threadId);
    w.f64("predicted", s.predicted);
    w.f64("actual", s.actual);
    w.f64("error", s.error);
    w.endSection();
  }
  ckpt::save(w, "overall", overall_);
  w.i64("divergenceStreak", divergenceStreak_);
  w.boolean("diverged", diverged_);
  w.endSection();
}

void PredictionTracker::loadState(ckpt::BinReader& r) {
  PredictionTracker fresh;
  fresh.watchdogArmed_ = watchdogArmed_;
  fresh.watchdogThreshold_ = watchdogThreshold_;
  fresh.watchdogQuanta_ = watchdogQuanta_;
  r.beginSection("predictionTracker");
  const std::vector<std::int64_t> pendingIds = r.vecI64("pendingThreadIds");
  const std::vector<double> pendingRates = r.vecF64("pendingRates");
  if (pendingIds.size() != pendingRates.size())
    throw ckpt::CheckpointError{
        "prediction tracker checkpoint: pending id/rate lists disagree in "
        "length"};
  for (std::size_t i = 0; i < pendingIds.size(); ++i)
    fresh.pending_[static_cast<int>(pendingIds[i])] = pendingRates[i];
  const std::vector<std::int64_t> order = r.vecI64("threadOrder");
  fresh.threadOrder_.reserve(order.size());
  for (const std::int64_t id : order)
    fresh.threadOrder_.push_back(static_cast<int>(id));
  const std::int64_t perThreadCount = r.i64("perThreadCount");
  for (std::int64_t i = 0; i < perThreadCount; ++i) {
    r.beginSection("perThread");
    const int id = static_cast<int>(r.i64("threadId"));
    util::OnlineStats stats;
    ckpt::load(r, "stats", stats);
    r.endSection();
    fresh.perThread_.emplace(id, stats);
  }
  const std::int64_t traceCount = r.i64("traceCount");
  fresh.trace_.reserve(static_cast<std::size_t>(traceCount));
  for (std::int64_t i = 0; i < traceCount; ++i) {
    r.beginSection("point");
    PredictionErrorPoint p;
    p.tick = r.i64("tick");
    p.samples = static_cast<int>(r.i64("samples"));
    p.mean = r.f64("mean");
    p.min = r.f64("min");
    p.max = r.f64("max");
    r.endSection();
    fresh.trace_.push_back(p);
  }
  const std::int64_t scoredCount = r.i64("lastScoredCount");
  fresh.lastScored_.reserve(static_cast<std::size_t>(scoredCount));
  for (std::int64_t i = 0; i < scoredCount; ++i) {
    r.beginSection("scored");
    ScoredPrediction s;
    s.threadId = static_cast<int>(r.i64("threadId"));
    s.predicted = r.f64("predicted");
    s.actual = r.f64("actual");
    s.error = r.f64("error");
    r.endSection();
    fresh.lastScored_.push_back(s);
  }
  ckpt::load(r, "overall", fresh.overall_);
  fresh.divergenceStreak_ = static_cast<int>(r.i64("divergenceStreak"));
  fresh.diverged_ = r.boolean("diverged");
  r.endSection();
  *this = std::move(fresh);
}

}  // namespace dike::core
