// Dike configuration: the two key scheduling parameters (swapSize,
// quantaLength), the fairness threshold, and the adaptation goal.
#pragma once

#include <array>
#include <cstdint>

namespace dike::core {

/// What the Optimizer tunes for (Section III-F). None = non-adaptive Dike
/// with fixed parameters.
enum class AdaptationGoal { None, Fairness, Performance };

/// The legal quantaLength values (milliseconds) — the paper's ladder.
inline constexpr std::array<int, 4> kQuantaLadderMs{100, 200, 500, 1000};

/// swapSize bounds: any even number from 2; Algorithm 2 caps growth at 16.
inline constexpr int kMinSwapSize = 2;
inline constexpr int kMaxSwapSize = 16;

/// The two key scheduling parameters as a value type (a "scheduler
/// configuration" in the paper's terms — 32 possible combinations).
struct DikeParams {
  int swapSize = 8;          ///< threads migrated per quantum (even)
  int quantaLengthMs = 500;  ///< time between scheduling decisions

  [[nodiscard]] friend bool operator==(const DikeParams&,
                                       const DikeParams&) = default;
};

/// Default (non-adaptive) configuration: the paper's <8, 500>.
[[nodiscard]] constexpr DikeParams defaultParams() noexcept {
  return DikeParams{8, 500};
}

/// Observer tuning.
struct ObserverConfig {
  /// LLC miss-ratio boundary between memory- and compute-intensive threads
  /// (the established 10% threshold the paper adopts from Xie & Loh).
  double llcMissThreshold = 0.10;
  /// CoreBW estimate. The default is the paper-literal moving mean over
  /// movingMeanWindow quanta; clearing symmetricMovingMean switches to an
  /// asymmetric high-water filter (rise immediately to demonstrated
  /// bandwidth, decay by coreBwDecay per quantum) explored in the ablation
  /// bench. Socket blending (socketShare) supplies capability information
  /// either way.
  double coreBwDecay = 0.90;
  bool symmetricMovingMean = true;
  std::size_t movingMeanWindow = 8;
  /// Cores of one socket are identical silicon: a core's capability estimate
  /// is at least this share of the best estimate seen on its socket.
  double socketShare = 0.8;
  /// Workload-class boundary: |#M - #C| <= tolerance * total => Balanced.
  double balanceTolerance = 0.125;
  /// Window (in quanta) of the per-thread moving-mean access rate the
  /// fairness signal is computed over. Smoothing over a few quanta makes
  /// rotation effective: alternating a thread between core types equalises
  /// the moving averages, so the fairness check can actually reach theta_f.
  std::size_t threadRateWindow = 6;
  /// Processes whose mean access rate is below this (accesses/second) are
  /// ignored by the fairness signal — their rates are noise-dominated.
  double processRateFloor = 1e5;
  /// Sample hygiene (resilience layer). When set, dropped or implausible
  /// counter readings (NaN, negative, above maxPlausibleRate) are replaced
  /// by the thread's last-known-good reading for up to maxSampleHoldQuanta
  /// quanta (the staleness age is exported on ThreadInfo); beyond that the
  /// thread is treated as unobserved for the quantum rather than poisoning
  /// the moving means.
  bool sanitizeSamples = true;
  int maxSampleHoldQuanta = 8;
  /// Access rates above this (accesses/second) are physically implausible
  /// for any machine this simulator models and are treated as corrupt.
  double maxPlausibleRate = 1e15;
};

/// Self-healing knobs (see docs/RESILIENCE.md for the degradation ladder).
struct ResilienceConfig {
  /// Divergence watchdog: when the mean signed prediction error stays at or
  /// beyond divergenceErrorThreshold for divergenceQuanta consecutive
  /// scored quanta, the closed-loop state (per-thread rate windows, CoreBW
  /// filters, sample holds) is reset and rebuilt from fresh observations.
  bool divergenceWatchdog = true;
  double divergenceErrorThreshold = 0.6;
  int divergenceQuanta = 8;
  /// Fairness watchdog: armed only while the fault layer reports injection
  /// active (setFaultsActiveHint). When unfairness stays above theta_f for
  /// fairnessStallQuanta consecutive quanta, Dike falls back to a blind
  /// round-robin rotation for fallbackQuanta quanta (or until the fairness
  /// signal recovers below theta_f, whichever is sooner), then resumes the
  /// predictive pipeline.
  bool fairnessWatchdog = true;
  int fairnessStallQuanta = 24;
  int fallbackQuanta = 16;
  /// Quanta a thread sits out after a failed swap/migration before the
  /// Decider lets it be actuated again (scaled by its consecutive-failure
  /// count, capped at 8x — a bounded backoff against a flapping actuator).
  int failedActuationCooldownQuanta = 1;
};

/// Clustered-scheduling knobs (large-machine mode; see DESIGN.md). With
/// `clusters == 0` the flat single-instance pipeline runs unchanged; with
/// `clusters == 1` the clustered scheduler is instantiated but degenerates
/// to pure delegation (byte-identical to flat — the equivalence contract
/// the scale test tier enforces); `clusters >= 2` splits the machine into
/// that many contiguous core ranges, each served by its own Dike instance
/// over cluster-local observations, with a top-level rebalancer migrating
/// whole threads between clusters on sustained fairness imbalance.
struct ClusterConfig {
  int clusters = 0;
  /// Rebalancer cadence: inspect per-cluster unfairness every N quanta.
  int rebalanceQuanta = 8;
  /// Imbalance trigger: max-min per-cluster unfairness must exceed this.
  double rebalanceThreshold = 0.02;
  /// Consecutive over-threshold inspections required before acting
  /// (transient skew across clusters must not cause migration churn).
  int rebalanceStreak = 3;
  /// Threads moved per rebalance action (whole-thread migrations).
  int rebalanceBudget = 2;
  /// Worker budget for the intra-quantum plan phase: the K cluster plans
  /// may run concurrently on the shared util::TaskPool. 1 (default) is the
  /// serial fast path, 0 resolves to util::defaultJobs() (the DIKE_JOBS
  /// knob), N caps the concurrent plans at N. Purely an execution knob:
  /// every value yields byte-identical decisions, reports, and checkpoints.
  int decideJobs = 1;

  /// decideJobs is deliberately excluded: it is how a run *executes*, not
  /// what it computes. Two configs differing only in decideJobs are the
  /// same logical configuration (the replay codec omits the knob for the
  /// same reason, so checkpoints byte-match across jobs counts).
  [[nodiscard]] friend bool operator==(const ClusterConfig& a,
                                       const ClusterConfig& b) {
    return a.clusters == b.clusters &&
           a.rebalanceQuanta == b.rebalanceQuanta &&
           a.rebalanceThreshold == b.rebalanceThreshold &&
           a.rebalanceStreak == b.rebalanceStreak &&
           a.rebalanceBudget == b.rebalanceBudget;
  }
};

/// Full Dike configuration.
struct DikeConfig {
  DikeParams params = defaultParams();
  /// theta_f: the system is fair when the coefficient of variation of
  /// homogeneous threads' access rates is below this (user-settable; the
  /// paper defaults to 0.1 on instantaneous rates — we default to 0.03
  /// because the signal is computed on cumulative rates, which disperse
  /// far less than instantaneous ones).
  double fairnessThreshold = 0.03;
  AdaptationGoal goal = AdaptationGoal::None;
  ObserverConfig observer{};
  ResilienceConfig resilience{};
  /// swapOH: average time a thread loses to a swap, in milliseconds (Eqn 2's
  /// overhead term) — the context switch plus the cache-refill penalty, as a
  /// system profiler would measure it end to end.
  double swapOhMs = 25.0;
  /// Do not swap a thread again for this many quanta (Section III-D: "Dike
  /// does not swap a thread in consecutive quanta").
  int cooldownQuanta = 1;
  /// Wall-clock floor on the cool-down window (see DeciderConfig).
  int minCooldownMs = 600;
  /// Decider rejects pairs with negative totalProfit (ablation switch).
  bool requirePositiveProfit = true;
  /// When the placement rule cannot be met (e.g. more memory threads than
  /// high-bandwidth cores), rotate by pairing the extreme threads on the
  /// wrong side — how Dike obeys the rule "on average, across several
  /// quanta" (Section III-B).
  bool rotateWhenNoViolator = true;
  /// Selector skips pairs whose moving-mean rates differ by less than this
  /// relative margin (swapping equals is churn).
  double pairRateMargin = 0.03;
  /// When applications finish, their cores free up; with this enabled Dike
  /// promotes starved threads into free high-bandwidth cores (and, when no
  /// high-bandwidth core is free, demotes surplus compute threads into free
  /// low-bandwidth cores to open one). Single migrations, not swaps.
  bool useFreeCores = true;
  /// Large-machine clustered mode (off by default: clusters == 0).
  ClusterConfig cluster{};
};

}  // namespace dike::core
