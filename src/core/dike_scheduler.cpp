#include "core/dike_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "ckpt/archive.hpp"
#include "telemetry/live.hpp"
#include "telemetry/registry.hpp"
#include "util/types.hpp"

namespace dike::core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

DikeScheduler::DikeScheduler(DikeConfig config)
    : config_(config),
      params_(config.params),
      observer_(config.observer),
      selector_(SelectorConfig{config.fairnessThreshold,
                               config.rotateWhenNoViolator,
                               config.pairRateMargin}),
      predictor_(PredictorConfig{config.swapOhMs}),
      decider_(DeciderConfig{config.cooldownQuanta, config.minCooldownMs,
                             config.requirePositiveProfit,
                             config.resilience.failedActuationCooldownQuanta}) {
  if (config_.params.swapSize < kMinSwapSize ||
      config_.params.swapSize % 2 != 0)
    throw std::invalid_argument{"swapSize must be an even number >= 2"};
  if (config_.params.quantaLengthMs <= 0)
    throw std::invalid_argument{"quantaLengthMs must be > 0"};
  if (config_.fairnessThreshold <= 0.0)
    throw std::invalid_argument{"fairnessThreshold must be > 0"};
  if (config_.resilience.divergenceWatchdog)
    tracker_.armDivergenceWatchdog(config_.resilience.divergenceErrorThreshold,
                                   config_.resilience.divergenceQuanta);
}

std::string_view DikeScheduler::name() const {
  switch (config_.goal) {
    case AdaptationGoal::None: return "dike";
    case AdaptationGoal::Fairness: return "dike-af";
    case AdaptationGoal::Performance: return "dike-ap";
  }
  return "dike";
}

util::Tick DikeScheduler::quantumTicks() const {
  return util::millisToTicks(params_.quantaLengthMs);
}

double DikeScheduler::observedRate(int threadId) const noexcept {
  const ThreadInfo* t = observer_.findThread(threadId);
  return t != nullptr ? t->avgAccessRate : kNaN;
}

void DikeScheduler::onQuantum(sched::SchedulerView& view) {
  DIKE_SCOPE_TIMER("core.dike.on_quantum");
  // Live-plane timing: wall-clock the whole decide step (plan + commit) so
  // the /metrics latency summary reflects what an online scheduler would
  // steal from the application. Only costs a clock read when live is on.
  const bool live = telemetry::liveEnabled();
  const auto decideStart =
      live ? std::chrono::steady_clock::now()
           : std::chrono::steady_clock::time_point{};
  // The record id is the quantum being decided; commitQuantum advances the
  // index, so capture it first.
  const std::int64_t decidedQuantum = quantumIndex_;
  planQuantum(view);
  commitQuantum(view);
  if (live) {
    const auto elapsed = std::chrono::steady_clock::now() - decideStart;
    telemetry::publish(
        telemetry::EventKind::DecideLatency,
        static_cast<std::uint32_t>(decidedQuantum), view.now(),
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }
}

void DikeScheduler::planQuantum(sched::SchedulerView& view) {
  DIKE_SCOPE_TIMER("core.dike.plan_quantum");
  const bool live = telemetry::liveEnabled();
  // Close the loop: score the predictions registered last quantum against
  // the rates just measured.
  tracker_.scoreQuantum(view.sample(), view.now());
  if (live) {
    for (const ScoredPrediction& scored : tracker_.lastScored()) {
      if (std::isnan(scored.error)) continue;
      telemetry::publish(telemetry::EventKind::PredictionError,
                         static_cast<std::uint32_t>(scored.threadId),
                         quantumIndex_, std::fabs(scored.error),
                         scored.error);
    }
  }

  // Divergence watchdog: a persistently saturated signed error means the
  // closed loop is tracking garbage (stuck counters, corrupt feed) —
  // rebuild the Observer's estimates from fresh observations.
  if (tracker_.divergenceDetected()) {
    tracker_.acknowledgeDivergence();
    observer_.resetClosedLoopState();
    ++totals_.divergenceResets;
    DIKE_COUNTER("core.dike.divergence_reset");
  }

  makeObservationInto(view, arena_.obs);
  observer_.observe(arena_.obs);

  plan_ = QuantumPlan{};
  QuantumDecisionStats& stats = plan_.stats;
  stats.quantumIndex = quantumIndex_;
  stats.unfairness = observer_.systemUnfairness();
  stats.workloadType = observer_.workloadType();

  // Decision record: built only when a sink is attached (zero cost
  // otherwise). Filled locally here; every *append to the shared trace*
  // (including the previous record's realised-fairness back-fill) waits for
  // commitQuantum, where cluster order is serial again.
  plan_.traced = decisionTrace_ != nullptr;
  if (plan_.traced) {
    telemetry::DecisionRecord* rec = &plan_.record;
    rec->tick = view.now();
    rec->quantumIndex = quantumIndex_;
    rec->unfairness = stats.unfairness;
    rec->unfairnessNext = kNaN;
    rec->workloadClass = std::string{toString(stats.workloadType)};
  }

  const bool fair = stats.unfairness < config_.fairnessThreshold;
  plan_.fair = fair;

  // Fairness watchdog. Armed only while the fault layer says injection is
  // active: a clean run never enters the fallback, so fault-free outputs
  // are untouched. While in fallback, recover the moment the signal drops
  // below theta_f or the fallback budget runs out.
  if (fallbackLeft_ > 0 && fair) fallbackLeft_ = 0;
  if (fallbackLeft_ == 0) {
    const bool armed =
        config_.resilience.fairnessWatchdog && faultsActive_;
    if (armed && !fair)
      ++fairnessStallStreak_;
    else
      fairnessStallStreak_ = 0;
    if (armed && fairnessStallStreak_ >= config_.resilience.fairnessStallQuanta) {
      fallbackLeft_ = config_.resilience.fallbackQuanta;
      fairnessStallStreak_ = 0;
      ++totals_.fallbackEngagements;
      DIKE_COUNTER("core.dike.fallback_engaged");
    }
  }

  plan_.fallbackQuantum = fallbackLeft_ > 0;
  if (plan_.fallbackQuantum) {
    // The predictive pipeline has stalled under faults; commitQuantum will
    // run one blind round-robin rotation instead of the swap walk.
    stats.acted = true;
    stats.fallbackActive = true;
  } else if (!fair) {
    stats.acted = true;

    // Optimizer: one Algorithm-2 step per (unfair) quantum in adaptive mode.
    if (config_.goal != AdaptationGoal::None)
      params_ = optimizer_.optimize(params_, observer_.workloadType(),
                                    config_.goal);

    // Selector: form candidate pairs into this instance's arena. The
    // Predictor/Decider walk over them stays in commitQuantum — actuation
    // results (hook vetoes) feed back into the walk, so it cannot be
    // planned ahead.
    selector_.formPairsInto(observer_, params_.swapSize * 2, arena_.selector,
                            arena_.pairs);
    stats.pairsConsidered = util::isize(arena_.pairs);
  }
  plan_.planned = true;
}

void DikeScheduler::commitQuantum(sched::SchedulerView& view) {
  DIKE_SCOPE_TIMER("core.dike.commit_quantum");
  QuantumDecisionStats& stats = plan_.stats;
  telemetry::DecisionRecord* rec = plan_.traced ? &plan_.record : nullptr;
  const bool fair = plan_.fair;
  // Back-fill the previous record's realised-fairness slot with the
  // unfairness this plan observed — the trace sees exactly the per-cluster
  // (annotate, append) sequence the serial pipeline produced.
  if (plan_.traced)
    decisionTrace_->annotateLastUnfairnessNext(stats.unfairness);

  if (plan_.fallbackQuantum) {
    // Blind round-robin rotation: trust no counters (they got us here).
    rotateRoundRobin(view, stats);
    --fallbackLeft_;
    ++totals_.fallbackQuanta;
    DIKE_COUNTER("core.dike.fallback_quantum");
  } else if (!fair) {
    // Predictor -> Decider -> Migrator over the planned pairs. The Selector
    // oversupplied candidates (2x) because the Decider will reject some on
    // cool-down or profit; swapSize bounds the swaps actually *executed*
    // per quantum.
    const int maxSwaps = params_.swapSize / 2;
    const std::vector<ThreadPair>& pairs = arena_.pairs;
    const auto traceSwap = [&](const ThreadPair& pair,
                               const SwapPrediction* prediction,
                               telemetry::SwapOutcome outcome) {
      if (rec == nullptr) return;
      telemetry::SwapDecisionRecord s;
      s.lowThread = pair.lowThread;
      s.highThread = pair.highThread;
      s.lowRate = observedRate(pair.lowThread);
      s.highRate = observedRate(pair.highThread);
      s.predictedRateLow = prediction ? prediction->predictedRateLow : kNaN;
      s.predictedRateHigh = prediction ? prediction->predictedRateHigh : kNaN;
      s.totalProfit = prediction ? prediction->totalProfit : kNaN;
      s.outcome = outcome;
      rec->swaps.push_back(std::move(s));
    };
    for (const ThreadPair& pair : pairs) {
      if (stats.swapsExecuted >= maxSwaps) {
        // The untraced path breaks here; with a sink attached we keep
        // walking only to record the starved candidates (no side effects,
        // and the per-quantum stats stay identical).
        if (rec == nullptr) break;
        traceSwap(pair, nullptr, telemetry::SwapOutcome::BudgetExhausted);
        continue;
      }
      const SwapPrediction prediction =
          predictor_.predict(observer_, pair, params_.quantaLengthMs);
      if (decider_.inCooldown(pair.lowThread, view.now(), quantumTicks()) ||
          decider_.inCooldown(pair.highThread, view.now(), quantumTicks()) ||
          decider_.inRetryBackoff(pair.lowThread, view.now(),
                                  quantumTicks()) ||
          decider_.inRetryBackoff(pair.highThread, view.now(),
                                  quantumTicks())) {
        ++stats.pairsRejectedCooldown;
        traceSwap(pair, &prediction, telemetry::SwapOutcome::RejectedCooldown);
        continue;
      }
      if (!decider_.shouldSwap(prediction, view.now(), quantumTicks())) {
        ++stats.pairsRejectedProfit;
        traceSwap(pair, &prediction, telemetry::SwapOutcome::RejectedProfit);
        continue;
      }
      if (!view.swap(pair.lowThread, pair.highThread)) {
        // The actuator refused (a sched_setaffinity failure on a live
        // host). Placement is unchanged: register nothing with the
        // tracker, start no migration cooldown — just back off both
        // threads and let a later quantum retry.
        decider_.recordFailedActuation(pair.lowThread, view.now());
        decider_.recordFailedActuation(pair.highThread, view.now());
        traceSwap(pair, &prediction, telemetry::SwapOutcome::FailedActuation);
        ++stats.swapsFailed;
        DIKE_COUNTER("core.dike.swap_failed");
        continue;
      }
      decider_.recordSwap(pair, view.now());
      traceSwap(pair, &prediction, telemetry::SwapOutcome::Executed);
      ++stats.swapsExecuted;
      ++totalSwaps_;
      tracker_.setPrediction(pair.lowThread, prediction.predictedRateLow);
      tracker_.setPrediction(pair.highThread, prediction.predictedRateHigh);
    }
  }
  stats.params = params_;

  if (!fair && !plan_.fallbackQuantum && config_.useFreeCores)
    migrateToFreeCores(view, rec, stats);

  // Persistence prediction for every live thread that did not migrate
  // (migrated threads already carry the predictor's post-swap estimate).
  for (const ThreadInfo& t : observer_.threadsByAccessRate())
    tracker_.setPredictionIfAbsent(t.threadId, t.accessRate);

  if (rec != nullptr) {
    rec->acted = stats.acted;
    rec->quantaLengthMs = params_.quantaLengthMs;
    rec->swapSize = params_.swapSize;
    if (stats.fallbackActive)
      rec->rationale = "fallback-roundrobin";
    else if (!stats.acted)
      rec->rationale = "fair";
    else if (stats.swapsExecuted > 0 || !rec->migrations.empty())
      rec->rationale = "swapped";
    else
      rec->rationale = "rotation-blocked";
    decisionTrace_->record(std::move(plan_.record));
  }

  lastStats_ = stats;
  ++totals_.quanta;
  if (stats.acted) ++totals_.actedQuanta;
  totals_.pairsConsidered += stats.pairsConsidered;
  totals_.rejectedCooldown += stats.pairsRejectedCooldown;
  totals_.rejectedProfit += stats.pairsRejectedProfit;
  totals_.swapsExecuted += stats.swapsExecuted;
  totals_.swapsFailed += stats.swapsFailed;
  totals_.migrationsFailed += stats.migrationsFailed;
  ++quantumIndex_;
  plan_.planned = false;
}

void DikeScheduler::rotateRoundRobin(sched::SchedulerView& view,
                                     QuantumDecisionStats& stats) {
  // One rotation step: thread on occupied core c_i moves to c_{i+1} (and
  // the last wraps to the first), realised as a chain of swaps against the
  // first occupant. Blind by construction — ascending core ids, no counter
  // input — so a corrupt feed cannot bias it; over several quanta every
  // thread visits every core class, which is what restores fairness.
  std::vector<int>& occupants = arena_.occupants;
  occupants.clear();
  for (int c = 0; c < view.coreCount(); ++c) {
    const int t = view.coreOccupant(c);
    if (t >= 0 && !view.isSuspended(t)) occupants.push_back(t);
  }
  if (occupants.size() < 2) return;
  const int anchor = occupants.front();
  for (std::size_t i = 1; i < occupants.size(); ++i) {
    if (!view.swap(anchor, occupants[i])) {
      decider_.recordFailedActuation(anchor, view.now());
      decider_.recordFailedActuation(occupants[i], view.now());
      ++stats.swapsFailed;
      DIKE_COUNTER("core.dike.swap_failed");
      continue;
    }
    ++stats.swapsExecuted;
    ++totalSwaps_;
    // Cooldown stamps keep the predictive pipeline from churning the same
    // threads the instant the fallback hands control back.
    decider_.recordMigration(anchor, view.now());
    decider_.recordMigration(occupants[i], view.now());
  }
}

void DikeScheduler::migrateToFreeCores(sched::SchedulerView& view,
                                       telemetry::DecisionRecord* rec,
                                       QuantumDecisionStats& stats) {
  // Cores freed by finished applications are exploited directly: promote
  // starved threads into free high-bandwidth cores; when none is free but
  // low-bandwidth cores are, demote surplus compute threads to open a
  // high-bandwidth core for the next quantum. Single migrations (cheaper
  // than swaps — no partner is displaced); the cooldown still applies.
  std::vector<int>& freeHigh = arena_.freeHigh;
  std::vector<int>& freeLow = arena_.freeLow;
  freeHigh.clear();
  freeLow.clear();
  for (int c = 0; c < view.coreCount(); ++c) {
    if (view.coreOccupant(c) != -1) continue;
    (observer_.isHighBandwidthCore(c) ? freeHigh : freeLow).push_back(c);
  }
  if (freeHigh.empty() && freeLow.empty()) return;

  const int budget = params_.swapSize / 2;
  int moved = 0;

  const auto traceMigration = [&](const ThreadInfo& t, int dest,
                                  double predictedRate, bool promotion) {
    if (rec == nullptr) return;
    rec->migrations.push_back(
        telemetry::MigrationDecisionRecord{t.threadId, dest, predictedRate,
                                           promotion});
  };

  if (!freeHigh.empty()) {
    // Promotion candidates: threads on low-bandwidth cores — memory-class
    // violators first, then anyone starved — most starved first.
    std::vector<const ThreadInfo*>& candidates = arena_.candidates;
    candidates.clear();
    for (const ThreadInfo& t : observer_.threadsByAccessRate())
      if (!observer_.isHighBandwidthCore(t.coreId)) candidates.push_back(&t);
    std::sort(candidates.begin(), candidates.end(),
              [](const ThreadInfo* a, const ThreadInfo* b) {
                const bool ma = a->cls == ThreadClass::Memory;
                const bool mb = b->cls == ThreadClass::Memory;
                if (ma != mb) return ma;
                if (a->deficit != b->deficit) return a->deficit > b->deficit;
                return a->threadId < b->threadId;
              });
    std::size_t core = 0;
    for (const ThreadInfo* t : candidates) {
      if (moved >= budget || core >= freeHigh.size()) break;
      if (t->cls != ThreadClass::Memory &&
          t->deficit <= config_.pairRateMargin)
        continue;  // not a violator and not starved: leave it be
      if (decider_.inCooldown(t->threadId, view.now(), quantumTicks()) ||
          decider_.inRetryBackoff(t->threadId, view.now(), quantumTicks()))
        continue;
      const int dest = freeHigh[core];
      if (!view.migrateTo(t->threadId, dest)) {
        // Failed actuation: the core is still free — leave `core` in place
        // so the next candidate can try it, and back this thread off.
        decider_.recordFailedActuation(t->threadId, view.now());
        ++stats.migrationsFailed;
        DIKE_COUNTER("core.dike.migration_failed");
        continue;
      }
      ++core;
      decider_.recordMigration(t->threadId, view.now());
      const double predicted =
          predictor_.predictMigratedRate(observer_, *t, dest);
      tracker_.setPrediction(t->threadId, predicted);
      traceMigration(*t, dest, predicted, /*promotion=*/true);
      ++moved;
    }
  } else {
    // No free high-bandwidth core: open one by demoting a surplus compute
    // thread into a free low-bandwidth core.
    std::vector<const ThreadInfo*>& candidates = arena_.candidates;
    candidates.clear();
    for (const ThreadInfo& t : observer_.threadsByAccessRate())
      if (observer_.isHighBandwidthCore(t.coreId) &&
          t.cls == ThreadClass::Compute &&
          t.deficit < -config_.pairRateMargin)
        candidates.push_back(&t);
    std::sort(candidates.begin(), candidates.end(),
              [](const ThreadInfo* a, const ThreadInfo* b) {
                if (a->deficit != b->deficit) return a->deficit < b->deficit;
                return a->threadId < b->threadId;
              });
    std::size_t core = 0;
    for (const ThreadInfo* t : candidates) {
      if (moved >= budget || core >= freeLow.size()) break;
      if (decider_.inCooldown(t->threadId, view.now(), quantumTicks()) ||
          decider_.inRetryBackoff(t->threadId, view.now(), quantumTicks()))
        continue;
      const int dest = freeLow[core];
      if (!view.migrateTo(t->threadId, dest)) {
        decider_.recordFailedActuation(t->threadId, view.now());
        ++stats.migrationsFailed;
        DIKE_COUNTER("core.dike.migration_failed");
        continue;
      }
      ++core;
      decider_.recordMigration(t->threadId, view.now());
      const double predicted =
          predictor_.predictMigratedRate(observer_, *t, dest);
      tracker_.setPrediction(t->threadId, predicted);
      traceMigration(*t, dest, predicted, /*promotion=*/false);
      ++moved;
    }
  }
}

void DikeScheduler::saveExtraState(ckpt::BinWriter& w) const {
  w.i64("swapSize", params_.swapSize);
  w.i64("quantaLengthMs", params_.quantaLengthMs);
  w.i64("quantumIndex", quantumIndex_);
  w.i64("totalSwaps", totalSwaps_);
  w.beginSection("lastStats");
  w.i64("quantumIndex", lastStats_.quantumIndex);
  w.f64("unfairness", lastStats_.unfairness);
  w.boolean("acted", lastStats_.acted);
  w.i64("pairsConsidered", lastStats_.pairsConsidered);
  w.i64("pairsRejectedCooldown", lastStats_.pairsRejectedCooldown);
  w.i64("pairsRejectedProfit", lastStats_.pairsRejectedProfit);
  w.i64("swapsExecuted", lastStats_.swapsExecuted);
  w.i64("swapsFailed", lastStats_.swapsFailed);
  w.i64("migrationsFailed", lastStats_.migrationsFailed);
  w.boolean("fallbackActive", lastStats_.fallbackActive);
  w.i64("paramsSwapSize", lastStats_.params.swapSize);
  w.i64("paramsQuantaLengthMs", lastStats_.params.quantaLengthMs);
  w.i64("workloadType", static_cast<std::int64_t>(lastStats_.workloadType));
  w.endSection();
  w.beginSection("totals");
  w.i64("quanta", totals_.quanta);
  w.i64("actedQuanta", totals_.actedQuanta);
  w.i64("pairsConsidered", totals_.pairsConsidered);
  w.i64("rejectedCooldown", totals_.rejectedCooldown);
  w.i64("rejectedProfit", totals_.rejectedProfit);
  w.i64("swapsExecuted", totals_.swapsExecuted);
  w.i64("swapsFailed", totals_.swapsFailed);
  w.i64("migrationsFailed", totals_.migrationsFailed);
  w.i64("fallbackQuanta", totals_.fallbackQuanta);
  w.i64("fallbackEngagements", totals_.fallbackEngagements);
  w.i64("divergenceResets", totals_.divergenceResets);
  w.endSection();
  w.boolean("faultsActive", faultsActive_);
  w.i64("fairnessStallStreak", fairnessStallStreak_);
  w.i64("fallbackLeft", fallbackLeft_);
  observer_.saveState(w);
  decider_.saveState(w);
  tracker_.saveState(w);
}

void DikeScheduler::loadExtraState(ckpt::BinReader& r) {
  // All int-typed fields restore through checked narrowing: a corrupt or
  // wildly-scaled checkpoint must fail the load with a typed error instead
  // of silently wrapping a counter.
  const auto asInt = [](std::int64_t v, const char* what) {
    return util::checkedInt<ckpt::CheckpointError>(v, what);
  };
  DikeParams params;
  params.swapSize = asInt(r.i64("swapSize"), "dike checkpoint: swapSize");
  params.quantaLengthMs =
      asInt(r.i64("quantaLengthMs"), "dike checkpoint: quantaLengthMs");
  const std::int64_t quantumIndex = r.i64("quantumIndex");
  const std::int64_t totalSwaps = r.i64("totalSwaps");
  QuantumDecisionStats lastStats;
  r.beginSection("lastStats");
  lastStats.quantumIndex = r.i64("quantumIndex");
  lastStats.unfairness = r.f64("unfairness");
  lastStats.acted = r.boolean("acted");
  lastStats.pairsConsidered =
      asInt(r.i64("pairsConsidered"), "dike checkpoint: pairsConsidered");
  lastStats.pairsRejectedCooldown = asInt(
      r.i64("pairsRejectedCooldown"), "dike checkpoint: pairsRejectedCooldown");
  lastStats.pairsRejectedProfit = asInt(
      r.i64("pairsRejectedProfit"), "dike checkpoint: pairsRejectedProfit");
  lastStats.swapsExecuted =
      asInt(r.i64("swapsExecuted"), "dike checkpoint: swapsExecuted");
  lastStats.swapsFailed =
      asInt(r.i64("swapsFailed"), "dike checkpoint: swapsFailed");
  lastStats.migrationsFailed =
      asInt(r.i64("migrationsFailed"), "dike checkpoint: migrationsFailed");
  lastStats.fallbackActive = r.boolean("fallbackActive");
  lastStats.params.swapSize =
      asInt(r.i64("paramsSwapSize"), "dike checkpoint: paramsSwapSize");
  lastStats.params.quantaLengthMs = asInt(
      r.i64("paramsQuantaLengthMs"), "dike checkpoint: paramsQuantaLengthMs");
  lastStats.workloadType = static_cast<WorkloadType>(r.i64("workloadType"));
  r.endSection();
  DecisionTotals totals;
  r.beginSection("totals");
  totals.quanta = r.i64("quanta");
  totals.actedQuanta = r.i64("actedQuanta");
  totals.pairsConsidered = r.i64("pairsConsidered");
  totals.rejectedCooldown = r.i64("rejectedCooldown");
  totals.rejectedProfit = r.i64("rejectedProfit");
  totals.swapsExecuted = r.i64("swapsExecuted");
  totals.swapsFailed = r.i64("swapsFailed");
  totals.migrationsFailed = r.i64("migrationsFailed");
  totals.fallbackQuanta = r.i64("fallbackQuanta");
  totals.fallbackEngagements = r.i64("fallbackEngagements");
  totals.divergenceResets = r.i64("divergenceResets");
  r.endSection();
  const bool faultsActive = r.boolean("faultsActive");
  const int fairnessStallStreak = asInt(
      r.i64("fairnessStallStreak"), "dike checkpoint: fairnessStallStreak");
  const int fallbackLeft =
      asInt(r.i64("fallbackLeft"), "dike checkpoint: fallbackLeft");
  // The components restore into scratch copies first, so a schema failure
  // deep in one of them leaves this scheduler untouched.
  Observer observer{config_.observer};
  observer.loadState(r);
  Decider decider{decider_.config()};
  decider.loadState(r);
  PredictionTracker tracker;
  if (config_.resilience.divergenceWatchdog)
    tracker.armDivergenceWatchdog(config_.resilience.divergenceErrorThreshold,
                                  config_.resilience.divergenceQuanta);
  tracker.loadState(r);

  params_ = params;
  quantumIndex_ = quantumIndex;
  totalSwaps_ = totalSwaps;
  lastStats_ = lastStats;
  totals_ = totals;
  faultsActive_ = faultsActive;
  fairnessStallStreak_ = fairnessStallStreak;
  fallbackLeft_ = fallbackLeft;
  observer_ = std::move(observer);
  decider_ = std::move(decider);
  tracker_ = std::move(tracker);
}

}  // namespace dike::core
