#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dike::core {

namespace {

/// Defensive input clamp: the Observer sanitizes its feed, but the
/// Predictor is also driven directly by tests and (on a live host) by
/// counter paths with their own failure modes. A non-finite or negative
/// rate is treated as zero — predictions must never be NaN or negative.
double cleanRate(double rate) noexcept {
  return std::isfinite(rate) && rate > 0.0 ? rate : 0.0;
}

}  // namespace

Predictor::Predictor(PredictorConfig config) : config_(config) {
  if (config_.swapOhMs < 0.0)
    throw std::invalid_argument{"swapOhMs must be >= 0"};
}

SwapPrediction Predictor::predict(const Observer& observer,
                                  const ThreadPair& pair,
                                  int quantaLengthMs) const {
  const ThreadInfo* low = observer.findThread(pair.lowThread);
  const ThreadInfo* high = observer.findThread(pair.highThread);
  if (low == nullptr || high == nullptr)
    throw std::invalid_argument{"pair references a thread the observer has not seen"};
  if (quantaLengthMs <= 0)
    throw std::invalid_argument{"quantaLengthMs must be > 0"};

  // Eqn 2: Overhead_t = swapOH / quantaLength * AccessRate_t.
  const double rateLow = cleanRate(low->accessRate);
  const double rateHigh = cleanRate(high->accessRate);
  const double ohFraction = config_.swapOhMs / static_cast<double>(quantaLengthMs);
  const double overheadLow = ohFraction * rateLow;
  const double overheadHigh = ohFraction * rateHigh;

  // Eqn 1: profit_t = CoreBW_dest - AccessRate_t - Overhead_t, where each
  // thread's destination is its partner's current core.
  const double destBwForLow = cleanRate(observer.coreBw(high->coreId));
  const double destBwForHigh = cleanRate(observer.coreBw(low->coreId));

  SwapPrediction p;
  p.pair = pair;
  p.profitLow = destBwForLow - rateLow - overheadLow;
  p.profitHigh = destBwForHigh - rateHigh - overheadHigh;
  p.totalProfit = p.profitLow + p.profitHigh;  // Eqn 3

  p.predictedRateLow = predictMigratedRate(observer, *low, high->coreId);
  p.predictedRateHigh = predictMigratedRate(observer, *high, low->coreId);
  return p;
}

double Predictor::predictMigratedRate(const Observer& observer,
                                      const ThreadInfo& thread,
                                      int destCore) const {
  const double destBw = cleanRate(observer.coreBw(destCore));
  const double rate = cleanRate(thread.accessRate);
  if (thread.cls == ThreadClass::Memory) {
    // The paper's assumption: a memory-intensive migrant consumes the new
    // core's entire demonstrated bandwidth — but it cannot jump past what
    // its own demand supports, so the closed-loop estimate caps the
    // capability figure at twice the demonstrated rate.
    return std::min(destBw, 2.0 * rate);
  }
  // A compute-intensive migrant keeps its own demand; its rate scales with
  // the capability ratio between the cores (closed-loop estimate), capped
  // at what the destination can deliver.
  const double srcBw = cleanRate(observer.coreBw(thread.coreId));
  const double ratio = srcBw > 0.0 ? destBw / srcBw : 1.0;
  return std::min(rate * std::clamp(ratio, 0.25, 4.0), destBw);
}

}  // namespace dike::core
