#include "core/predictor.hpp"

#include <algorithm>
#include <stdexcept>

namespace dike::core {

namespace {

const ThreadInfo* findThread(const Observer& observer, int threadId) {
  for (const ThreadInfo& t : observer.threadsByAccessRate())
    if (t.threadId == threadId) return &t;
  return nullptr;
}

}  // namespace

Predictor::Predictor(PredictorConfig config) : config_(config) {
  if (config_.swapOhMs < 0.0)
    throw std::invalid_argument{"swapOhMs must be >= 0"};
}

SwapPrediction Predictor::predict(const Observer& observer,
                                  const ThreadPair& pair,
                                  int quantaLengthMs) const {
  const ThreadInfo* low = findThread(observer, pair.lowThread);
  const ThreadInfo* high = findThread(observer, pair.highThread);
  if (low == nullptr || high == nullptr)
    throw std::invalid_argument{"pair references a thread the observer has not seen"};
  if (quantaLengthMs <= 0)
    throw std::invalid_argument{"quantaLengthMs must be > 0"};

  // Eqn 2: Overhead_t = swapOH / quantaLength * AccessRate_t.
  const double ohFraction = config_.swapOhMs / static_cast<double>(quantaLengthMs);
  const double overheadLow = ohFraction * low->accessRate;
  const double overheadHigh = ohFraction * high->accessRate;

  // Eqn 1: profit_t = CoreBW_dest - AccessRate_t - Overhead_t, where each
  // thread's destination is its partner's current core.
  const double destBwForLow = observer.coreBw(high->coreId);
  const double destBwForHigh = observer.coreBw(low->coreId);

  SwapPrediction p;
  p.pair = pair;
  p.profitLow = destBwForLow - low->accessRate - overheadLow;
  p.profitHigh = destBwForHigh - high->accessRate - overheadHigh;
  p.totalProfit = p.profitLow + p.profitHigh;  // Eqn 3

  p.predictedRateLow = predictMigratedRate(observer, *low, high->coreId);
  p.predictedRateHigh = predictMigratedRate(observer, *high, low->coreId);
  return p;
}

double Predictor::predictMigratedRate(const Observer& observer,
                                      const ThreadInfo& thread,
                                      int destCore) const {
  const double destBw = observer.coreBw(destCore);
  if (thread.cls == ThreadClass::Memory) {
    // The paper's assumption: a memory-intensive migrant consumes the new
    // core's entire demonstrated bandwidth — but it cannot jump past what
    // its own demand supports, so the closed-loop estimate caps the
    // capability figure at twice the demonstrated rate.
    return std::min(destBw, 2.0 * thread.accessRate);
  }
  // A compute-intensive migrant keeps its own demand; its rate scales with
  // the capability ratio between the cores (closed-loop estimate), capped
  // at what the destination can deliver.
  const double srcBw = observer.coreBw(thread.coreId);
  const double ratio = srcBw > 0.0 ? destBw / srcBw : 1.0;
  return std::min(thread.accessRate * std::clamp(ratio, 0.25, 4.0), destBw);
}

}  // namespace dike::core
