// Optimizer: online adaptation of the two key scheduling parameters
// (Section III-F, Algorithm 2).
//
// Each invocation moves <swapSize, quantaLength> one step along the rules
// derived from the paper's contour plots (Figure 5), keyed on the current
// workload class and the user's adaptation goal. quantaLength moves along
// the ladder {100, 200, 500, 1000} ms; swapSize moves in steps of 2 within
// [2, 16].
#pragma once

#include "core/config.hpp"
#include "core/observer.hpp"

namespace dike::core {

class Optimizer {
 public:
  Optimizer() = default;

  /// Apply one Algorithm-2 step. Called only when the system is unfair
  /// (lines 1-4 short-circuit otherwise — the caller checks). Returns the
  /// updated parameters; `goal == None` leaves them untouched.
  [[nodiscard]] DikeParams optimize(DikeParams current, WorkloadType type,
                                    AdaptationGoal goal) const;

  /// One ladder step down/up with a floor/ceiling, exposed for tests.
  [[nodiscard]] static int decreaseQuanta(int quantaLengthMs, int floorMs);
  [[nodiscard]] static int increaseQuanta(int quantaLengthMs, int ceilingMs);
  [[nodiscard]] static int growSwapSize(int swapSize);
};

}  // namespace dike::core
