#include "core/optimizer.hpp"

#include <algorithm>

namespace dike::core {

namespace {

/// Index of the closest ladder entry (the ladder is sorted ascending).
std::size_t ladderIndex(int quantaLengthMs) {
  std::size_t best = 0;
  int bestDist = std::abs(kQuantaLadderMs[0] - quantaLengthMs);
  for (std::size_t i = 1; i < kQuantaLadderMs.size(); ++i) {
    const int dist = std::abs(kQuantaLadderMs[i] - quantaLengthMs);
    if (dist < bestDist) {
      best = i;
      bestDist = dist;
    }
  }
  return best;
}

}  // namespace

int Optimizer::decreaseQuanta(int quantaLengthMs, int floorMs) {
  const std::size_t idx = ladderIndex(quantaLengthMs);
  const int next = idx > 0 ? kQuantaLadderMs[idx - 1] : kQuantaLadderMs[0];
  return std::max(next, floorMs);  // Math.Max(quantaLength, floor)
}

int Optimizer::increaseQuanta(int quantaLengthMs, int ceilingMs) {
  const std::size_t idx = ladderIndex(quantaLengthMs);
  const int next = idx + 1 < kQuantaLadderMs.size() ? kQuantaLadderMs[idx + 1]
                                                    : kQuantaLadderMs.back();
  return std::min(next, ceilingMs);  // Math.Min(quantaLength, ceiling)
}

int Optimizer::growSwapSize(int swapSize) {
  return std::min(swapSize + 2, kMaxSwapSize);
}

DikeParams Optimizer::optimize(DikeParams current, WorkloadType type,
                               AdaptationGoal goal) const {
  DikeParams p = current;
  switch (goal) {
    case AdaptationGoal::None:
      return p;

    case AdaptationGoal::Fairness:
      switch (type) {
        case WorkloadType::Balanced:
          p.quantaLengthMs = decreaseQuanta(p.quantaLengthMs, 100);
          break;
        case WorkloadType::UnbalancedCompute:
          p.swapSize = growSwapSize(p.swapSize);
          p.quantaLengthMs = decreaseQuanta(p.quantaLengthMs, 200);
          break;
        case WorkloadType::UnbalancedMemory:
          p.swapSize = growSwapSize(p.swapSize);
          p.quantaLengthMs = decreaseQuanta(p.quantaLengthMs, 500);
          break;
      }
      return p;

    case AdaptationGoal::Performance:
      switch (type) {
        case WorkloadType::Balanced:
          p.quantaLengthMs = increaseQuanta(p.quantaLengthMs, 1000);
          break;
        case WorkloadType::UnbalancedCompute:
          p.swapSize = growSwapSize(p.swapSize);
          p.quantaLengthMs = increaseQuanta(p.quantaLengthMs, 1000);
          break;
        case WorkloadType::UnbalancedMemory:
          p.quantaLengthMs = increaseQuanta(p.quantaLengthMs, 1000);
          break;
      }
      return p;
  }
  return p;
}

}  // namespace dike::core
