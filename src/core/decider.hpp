// Decider: per-pair swap gating (Section III-D).
//
// A pair is rejected when either member is still in its migration cool-down
// ("Dike does not swap a thread in consecutive quanta" — enforced as a
// wall-clock window so short adaptive quanta do not erode the protection)
// or when the predicted totalProfit is negative.
#pragma once

#include <unordered_map>

#include "core/predictor.hpp"
#include "util/types.hpp"

namespace dike::ckpt {
class BinWriter;
class BinReader;
}  // namespace dike::ckpt

namespace dike::core {

struct DeciderConfig {
  /// Quanta a swapped thread must sit out (1 = no consecutive quanta).
  int cooldownQuanta = 1;
  /// Floor on the cool-down window in milliseconds: with 100 ms adaptive
  /// quanta a single-quantum cool-down would allow 10 migrations per second
  /// per thread, defeating its purpose.
  int minCooldownMs = 600;
  bool requirePositiveProfit = true;
  /// Quanta a thread sits out after a *failed* actuation before being
  /// retried. Scaled by the thread's consecutive-failure count (capped at
  /// 8x): a flapping actuator earns a bounded exponential-ish backoff
  /// instead of a retry storm. 0 disables the backoff (retry immediately).
  int failedActuationCooldownQuanta = 1;
};

class Decider {
 public:
  explicit Decider(DeciderConfig config = {});

  /// Should this predicted swap be executed now, under the given quantum?
  [[nodiscard]] bool shouldSwap(const SwapPrediction& prediction,
                                util::Tick now,
                                util::Tick quantumTicks) const;

  /// Record that both pair members migrated at `now`.
  void recordSwap(const ThreadPair& pair, util::Tick now);
  /// Record a single-thread migration (free-core move) at `now`.
  void recordMigration(int threadId, util::Tick now);

  /// Record that an actuation involving this thread failed at `now`: the
  /// machine state did NOT change, so no migration cooldown starts, but the
  /// thread enters a retry backoff window.
  void recordFailedActuation(int threadId, util::Tick now);

  /// True if the thread is still cooling down at `now`.
  [[nodiscard]] bool inCooldown(int threadId, util::Tick now,
                                util::Tick quantumTicks) const;

  /// True while the thread's failed-actuation backoff window is open.
  [[nodiscard]] bool inRetryBackoff(int threadId, util::Tick now,
                                    util::Tick quantumTicks) const;

  void reset() noexcept {
    lastMigration_.clear();
    failures_.clear();
  }

  [[nodiscard]] const DeciderConfig& config() const noexcept {
    return config_;
  }

  /// Serialize cooldown timestamps and failure-backoff state.
  void saveState(ckpt::BinWriter& w) const;
  void loadState(ckpt::BinReader& r);

 private:
  [[nodiscard]] util::Tick cooldownWindow(util::Tick quantumTicks) const;

  struct FailureState {
    util::Tick at = 0;
    int consecutive = 0;
  };

  DeciderConfig config_;
  std::unordered_map<int, util::Tick> lastMigration_;
  std::unordered_map<int, FailureState> failures_;
};

}  // namespace dike::core
