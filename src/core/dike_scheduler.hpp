// DikeScheduler: the full pipeline of Figure 3 — Observer -> Selector ->
// Predictor -> Decider -> Migrator, plus the Optimizer in adaptive modes.
#pragma once

#include <memory>

#include "core/arena.hpp"
#include "core/config.hpp"
#include "core/decider.hpp"
#include "core/observer.hpp"
#include "core/optimizer.hpp"
#include "core/prediction_tracker.hpp"
#include "core/predictor.hpp"
#include "core/selector.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/decision_trace.hpp"

namespace dike::core {

/// Statistics about one quantum's decisions (mainly for tests/reports).
struct QuantumDecisionStats {
  std::int64_t quantumIndex = 0;
  double unfairness = 0.0;
  bool acted = false;       ///< false when the fairness check short-circuited
  int pairsConsidered = 0;  ///< pairs formed by the Selector
  int pairsRejectedCooldown = 0;
  int pairsRejectedProfit = 0;
  int swapsExecuted = 0;
  int swapsFailed = 0;       ///< actuation failures (hook vetoed the swap)
  int migrationsFailed = 0;  ///< failed free-core migrations
  bool fallbackActive = false;  ///< fairness watchdog ran round-robin
  DikeParams params{};      ///< parameters in effect this quantum
  WorkloadType workloadType = WorkloadType::Balanced;
};

/// Whole-run decision totals.
struct DecisionTotals {
  std::int64_t quanta = 0;
  std::int64_t actedQuanta = 0;
  std::int64_t pairsConsidered = 0;
  std::int64_t rejectedCooldown = 0;
  std::int64_t rejectedProfit = 0;
  std::int64_t swapsExecuted = 0;
  std::int64_t swapsFailed = 0;
  std::int64_t migrationsFailed = 0;
  std::int64_t fallbackQuanta = 0;       ///< quanta spent in round-robin
  std::int64_t fallbackEngagements = 0;  ///< times the watchdog tripped
  std::int64_t divergenceResets = 0;     ///< closed-loop state resets
};

class DikeScheduler : public sched::Scheduler {
 public:
  explicit DikeScheduler(DikeConfig config = {});

  [[nodiscard]] std::string_view name() const override;
  [[nodiscard]] util::Tick quantumTicks() const override;
  void onQuantum(sched::SchedulerView& view) override;

  /// The quantum pipeline, split for intra-quantum parallelism.
  ///
  /// planQuantum runs everything that only touches this instance's own
  /// state and only *reads* the view: prediction scoring, the divergence
  /// watchdog, observation, the fairness check and watchdog bookkeeping,
  /// the optimizer step, and Selector pair formation (into this instance's
  /// arena). It performs no actuation and never writes the (shared)
  /// decision trace, so plans of disjoint cluster instances may run
  /// concurrently.
  ///
  /// commitQuantum then applies the plan: actuations (swaps, fallback
  /// rotation, free-core migrations) with their hook/decider/tracker
  /// feedback, decision-trace appends, and the stats/totals updates.
  /// Commits must run serially, in ascending cluster order, on one thread.
  ///
  /// onQuantum is exactly planQuantum + commitQuantum; calling the pair
  /// directly (as ClusteredDikeScheduler does) is byte-equivalent.
  /// Checkpoints are only taken at quantum boundaries, so the scratch plan
  /// is never serialized.
  void planQuantum(sched::SchedulerView& view);
  void commitQuantum(sched::SchedulerView& view);

  [[nodiscard]] const DikeConfig& configuration() const noexcept {
    return config_;
  }
  /// Parameters currently in effect (differ from the initial configuration
  /// in adaptive modes).
  [[nodiscard]] const DikeParams& params() const noexcept { return params_; }
  [[nodiscard]] const Observer& observer() const noexcept { return observer_; }
  [[nodiscard]] const PredictionTracker& predictions() const noexcept {
    return tracker_;
  }
  [[nodiscard]] const QuantumDecisionStats& lastQuantumStats() const noexcept {
    return lastStats_;
  }
  [[nodiscard]] const DecisionTotals& decisionTotals() const noexcept {
    return totals_;
  }
  [[nodiscard]] std::int64_t totalSwaps() const noexcept {
    return totalSwaps_;
  }

  /// Fault layer hint: set true while injection is armed, false when the
  /// window closes. The fairness watchdog (round-robin fallback) only trips
  /// while this is set — fault-free runs never change behaviour, preserving
  /// byte-identical golden outputs. The divergence watchdog is independent
  /// of this hint (its thresholds are conservative enough for clean runs).
  void setFaultsActiveHint(bool active) noexcept { faultsActive_ = active; }
  [[nodiscard]] bool faultsActiveHint() const noexcept {
    return faultsActive_;
  }
  /// True while the fairness watchdog has Dike running the round-robin
  /// fallback instead of the predictive pipeline.
  [[nodiscard]] bool inFallback() const noexcept { return fallbackLeft_ > 0; }

  /// Attach (or detach with nullptr) a decision-trace sink. Off by
  /// default; when attached, every quantum appends one DecisionRecord with
  /// the candidate ranking inputs and per-pair outcomes.
  void setDecisionTrace(telemetry::DecisionTrace* trace) noexcept {
    decisionTrace_ = trace;
  }
  [[nodiscard]] telemetry::DecisionTrace* decisionTrace() const noexcept {
    return decisionTrace_;
  }

 protected:
  void saveExtraState(ckpt::BinWriter& w) const override;
  void loadExtraState(ckpt::BinReader& r) override;

  void migrateToFreeCores(sched::SchedulerView& view,
                          telemetry::DecisionRecord* record,
                          QuantumDecisionStats& stats);
  /// Round-robin fallback: one blind rotation step over the occupied cores,
  /// trusting no counters (they are what got us here).
  void rotateRoundRobin(sched::SchedulerView& view,
                        QuantumDecisionStats& stats);
  /// Moving-mean access rate of a thread in the Observer's current view
  /// (the Selector's ranking input); NaN when the thread is not listed.
  [[nodiscard]] double observedRate(int threadId) const noexcept;

  // State is protected (not private) for ClusteredDikeScheduler, which in
  // multi-cluster mode bypasses this object's pipeline entirely and
  // maintains the aggregate-facing members (lastStats_, totals_,
  // totalSwaps_, quantumIndex_) from its per-cluster instances, so every
  // consumer that dynamic_casts to DikeScheduler keeps reading meaningful
  // numbers.
  DikeConfig config_;
  DikeParams params_;
  Observer observer_;
  Selector selector_;
  Predictor predictor_;
  Decider decider_;
  Optimizer optimizer_;
  PredictionTracker tracker_;
  std::int64_t quantumIndex_ = 0;
  std::int64_t totalSwaps_ = 0;
  QuantumDecisionStats lastStats_{};
  DecisionTotals totals_{};
  telemetry::DecisionTrace* decisionTrace_ = nullptr;
  bool faultsActive_ = false;
  int fairnessStallStreak_ = 0;
  int fallbackLeft_ = 0;
  /// Per-quantum scratch; capacity persists across quanta, contents do not.
  QuantumArena arena_;

  /// planQuantum -> commitQuantum hand-off. Scratch only: dead outside the
  /// plan/commit pair, so it is never serialized (checkpoints are taken at
  /// quantum boundaries).
  struct QuantumPlan {
    QuantumDecisionStats stats{};
    telemetry::DecisionRecord record{};
    bool traced = false;
    bool fair = false;
    bool fallbackQuantum = false;
    bool planned = false;
  };
  QuantumPlan plan_;
};

}  // namespace dike::core
