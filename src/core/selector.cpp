#include "core/selector.hpp"

#include <algorithm>
#include <cmath>

#include "util/types.hpp"

namespace dike::core {

Selector::Selector(SelectorConfig config) : config_(config) {}

std::vector<ThreadPair> Selector::formPairs(const Observer& observer,
                                            int swapSize) const {
  SelectorScratch scratch;
  std::vector<ThreadPair> pairs;
  formPairsInto(observer, swapSize, scratch, pairs);
  return pairs;
}

void Selector::formPairsInto(const Observer& observer, int swapSize,
                             SelectorScratch& scratch,
                             std::vector<ThreadPair>& pairs) const {
  pairs.clear();
  if (!observer.ready()) return;

  // Algorithm 1, lines 1-4: skip the quantum when the system is fair.
  if (observer.systemUnfairness() < config_.fairnessThreshold) return;

  const std::vector<ThreadInfo>& threads = observer.threadsByAccessRate();
  const int n = util::isize(threads);
  const int maxPairs = swapSize / 2;
  if (n < 2 || maxPairs < 1) return;

  // Lines 10-15: all threads of one class — pair from both ends regardless
  // of the placement rule.
  const bool allSame =
      std::all_of(threads.begin(), threads.end(), [&](const ThreadInfo& t) {
        return t.cls == threads.front().cls;
      });
  if (allSame) {
    int head = 0;
    int tail = n - 1;
    while (util::isize(pairs) < maxPairs && head < tail) {
      pairs.push_back(
          ThreadPair{threads[static_cast<std::size_t>(head)].threadId,
                     threads[static_cast<std::size_t>(tail)].threadId});
      ++head;
      --tail;
    }
    return;
  }

  // Lines 16-32, generalised to two candidate walks.
  //
  // Demote side: threads holding high-bandwidth cores. Placement-rule
  // violators (compute-classified threads squatting on high-BW cores) come
  // first; within each group the thread with the largest service *surplus*
  // relative to its siblings (most negative deficit) is demoted first.
  std::vector<const ThreadInfo*>& lows = scratch.lows;
  std::vector<const ThreadInfo*>& lowsRest = scratch.lowsRest;
  lows.clear();
  lowsRest.clear();
  for (const ThreadInfo& t : threads) {
    if (!observer.isHighBandwidthCore(t.coreId)) continue;
    if (t.cls == ThreadClass::Compute)
      lows.push_back(&t);
    else
      lowsRest.push_back(&t);
  }
  // Promote side: threads stuck on low-bandwidth cores. Memory-classified
  // violators first; within each group the most-starved thread (largest
  // positive deficit) is promoted first.
  std::vector<const ThreadInfo*>& highs = scratch.highs;
  std::vector<const ThreadInfo*>& highsRest = scratch.highsRest;
  highs.clear();
  highsRest.clear();
  for (const ThreadInfo& t : threads) {
    if (observer.isHighBandwidthCore(t.coreId)) continue;
    if (t.cls == ThreadClass::Memory)
      highs.push_back(&t);
    else
      highsRest.push_back(&t);
  }
  const auto bySurplus = [](const ThreadInfo* a, const ThreadInfo* b) {
    if (a->deficit != b->deficit) return a->deficit < b->deficit;
    return a->threadId < b->threadId;
  };
  const auto byStarvation = [](const ThreadInfo* a, const ThreadInfo* b) {
    if (a->deficit != b->deficit) return a->deficit > b->deficit;
    return a->threadId < b->threadId;
  };
  std::sort(lows.begin(), lows.end(), bySurplus);
  std::sort(lowsRest.begin(), lowsRest.end(), bySurplus);
  std::sort(highs.begin(), highs.end(), byStarvation);
  std::sort(highsRest.begin(), highsRest.end(), byStarvation);
  if (config_.rotateWhenNoViolator) {
    lows.insert(lows.end(), lowsRest.begin(), lowsRest.end());
    highs.insert(highs.end(), highsRest.begin(), highsRest.end());
  }

  const std::size_t candidates = std::min(lows.size(), highs.size());
  for (std::size_t k = 0;
       k < candidates && util::isize(pairs) < maxPairs; ++k) {
    const ThreadInfo* tl = lows[k];
    const ThreadInfo* th = highs[k];
    // A genuine double violation (compute squatting on a high-BW core AND
    // memory stuck on a low-BW core) is always worth fixing; any other
    // combination is rotation and must compensate a real starvation gap to
    // justify the migration cost.
    const bool doubleViolation = tl->cls == ThreadClass::Compute &&
                                 th->cls == ThreadClass::Memory;
    if (!doubleViolation &&
        th->deficit - tl->deficit <= config_.pairRateMargin)
      continue;
    pairs.push_back(ThreadPair{tl->threadId, th->threadId});
  }
}

}  // namespace dike::core
