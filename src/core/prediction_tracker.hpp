// Prediction-error accounting for the runtime-predictability evaluation
// (Section IV-C, Figures 7 and 8).
//
// Each quantum the scheduler registers a predicted next-quantum access rate
// for every live thread (its current rate if it stays put — "if a thread
// stays on the same core, we expect it to keep the same access rate" — or
// the predictor's post-swap estimate if it migrates). On the next sample
// the tracker computes signed relative errors against the measured rates.
#pragma once

#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dike::core {

/// Per-quantum error aggregate (one point of the Figure 8 time series).
struct PredictionErrorPoint {
  util::Tick tick = 0;
  int samples = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One (predicted, realised) pair from the most recent scoring pass —
/// the telemetry quantum stream emits these so predictor error is directly
/// plottable per quantum.
struct ScoredPrediction {
  int threadId = -1;
  double predicted = 0.0;
  double actual = 0.0;
  /// Signed relative error; NaN when the pair fell below the scoring
  /// floors (near-idle rates) and was excluded from the error statistics.
  double error = 0.0;
};

class PredictionTracker {
 public:
  /// Access rates below this are not scored: relative error against a
  /// near-zero denominator is meaningless (idle or nearly idle threads).
  static constexpr double kMinScoredRate = 1e6;
  /// Relative errors are computed against max(actual, this floor) so a
  /// thread dropping to a near-idle rate does not register an unbounded
  /// error.
  static constexpr double kDenominatorFloor = 4e6;

  /// Register the predicted access rate for a thread's next quantum.
  void setPrediction(int threadId, double predictedRate);

  /// Register a prediction only if the thread has none outstanding.
  void setPredictionIfAbsent(int threadId, double predictedRate);

  /// Score outstanding predictions against the new sample; records one
  /// trace point (stamped with `now`) and folds the errors into per-thread
  /// aggregates. Clears the outstanding predictions.
  void scoreQuantum(const sim::QuantumSample& sample, util::Tick now);

  /// Time series of per-quantum error aggregates (Figure 8).
  [[nodiscard]] const std::vector<PredictionErrorPoint>& trace()
      const noexcept {
    return trace_;
  }

  /// Every (predicted, realised) pair from the most recent scoreQuantum
  /// call, including pairs below the scoring floors (their error is NaN).
  [[nodiscard]] const std::vector<ScoredPrediction>& lastScored()
      const noexcept {
    return lastScored_;
  }

  /// Mean signed relative error of each thread over the whole run, in
  /// thread-id order of first appearance (Figure 7 summarises these).
  [[nodiscard]] std::vector<double> perThreadMeanErrors() const;

  /// All scored errors folded together.
  [[nodiscard]] const util::OnlineStats& overall() const noexcept {
    return overall_;
  }

  /// Divergence watchdog (resilience layer): arm it with an error threshold
  /// and a consecutive-quantum count. After arming, scoreQuantum flags
  /// divergence when the quantum-mean signed error magnitude stays at or
  /// above `errorThreshold` for `quanta` consecutive scored quanta with at
  /// least two samples each — the signature of a poisoned closed loop, not
  /// of ordinary noise. Disarmed (the default) nothing is ever flagged.
  void armDivergenceWatchdog(double errorThreshold, int quanta);
  [[nodiscard]] bool divergenceDetected() const noexcept { return diverged_; }
  /// Consecutive saturated quanta seen so far (for tests/telemetry).
  [[nodiscard]] int divergenceStreak() const noexcept {
    return divergenceStreak_;
  }
  /// Clear the flag and streak after the caller has reset its state.
  void acknowledgeDivergence() noexcept {
    diverged_ = false;
    divergenceStreak_ = 0;
  }

  void reset();

  /// Serialize outstanding predictions, per-thread aggregates, the error
  /// trace, and the watchdog streak. Watchdog *configuration* (threshold,
  /// quanta) is not state — the owner re-arms it from its config on rebuild.
  void saveState(ckpt::BinWriter& w) const;
  void loadState(ckpt::BinReader& r);

 private:
  std::unordered_map<int, double> pending_;
  std::unordered_map<int, util::OnlineStats> perThread_;
  std::vector<int> threadOrder_;
  std::vector<PredictionErrorPoint> trace_;
  std::vector<ScoredPrediction> lastScored_;
  util::OnlineStats overall_;
  bool watchdogArmed_ = false;
  double watchdogThreshold_ = 0.0;
  int watchdogQuanta_ = 0;
  int divergenceStreak_ = 0;
  bool diverged_ = false;
};

}  // namespace dike::core
