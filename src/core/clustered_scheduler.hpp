// ClusteredDikeScheduler: Dike for large machines.
//
// The flat pipeline sorts and pairs over every thread on the machine each
// quantum — O(n log n) on n global threads, which is fine at the paper's 40
// hardware threads and ruinous at 4096. Following the hierarchical
// decomposition of Agon and the cluster-local decision making of Affinity
// Tailor, this scheduler splits the machine into K contiguous core ranges
// ("clusters", normally one per socket), runs one complete Dike instance
// per cluster over cluster-local observations, and layers a cheap top-level
// rebalancer on top that migrates whole threads between clusters only on
// *sustained* fairness imbalance. Per-quantum decide work becomes
// O((n/K) log(n/K)) per cluster instance.
//
// Equivalence contract: with `cluster.clusters <= 1` every virtual call
// delegates straight to the base DikeScheduler — same name, same decisions,
// same checkpoint bytes — so the clustered entry point is byte-identical to
// the flat policy at 1 cluster (enforced by the `scale` test tier).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dike_scheduler.hpp"

namespace dike::core {

struct ClusteredSchedulerTestPeer;

class ClusteredDikeScheduler final : public DikeScheduler {
 public:
  explicit ClusteredDikeScheduler(DikeConfig config);

  [[nodiscard]] std::string_view name() const override;
  void onQuantum(sched::SchedulerView& view) override;

  /// Clusters requested by the configuration (the resolved count is capped
  /// at the machine's core count on first quantum).
  [[nodiscard]] int configuredClusters() const noexcept {
    return configuredClusters_;
  }
  /// Clusters actually formed; 0 until the first quantum (or a restore)
  /// reveals the machine size.
  [[nodiscard]] int resolvedClusters() const noexcept { return clusterCount_; }
  [[nodiscard]] const std::vector<int>& clusterOfCore() const noexcept {
    return clusterOfCore_;
  }
  /// Per-cluster Dike instance (multi-cluster mode only; k < resolved).
  [[nodiscard]] const DikeScheduler& clusterScheduler(int k) const {
    return *clusters_[static_cast<std::size_t>(k)];
  }

  /// Per-instance decide latency of the last quantum, in nanoseconds: the
  /// *maximum* over clusters of one cluster pipeline's wall time, plus the
  /// rebalancer. Clusters are independent — deployed, each instance runs on
  /// its own socket — so the slowest instance is the quantum's decide
  /// latency; this process executes them serially only because it is a
  /// simulation. The sample-scatter cost (simulator plumbing with no
  /// deployed counterpart) is reported separately via lastScatterNs().
  [[nodiscard]] std::int64_t lastDecideNs() const noexcept {
    return lastDecideNs_;
  }
  [[nodiscard]] std::int64_t lastScatterNs() const noexcept {
    return lastScatterNs_;
  }
  /// Whole-thread cross-cluster moves the rebalancer has performed.
  [[nodiscard]] std::int64_t rebalanceMoves() const noexcept {
    return rebalanceMoves_;
  }
  /// Wall-clock decide time of the last quantum, in nanoseconds: cluster
  /// plans (concurrent when decideJobs > 1) + serial commits + rebalance,
  /// excluding the sample scatter. This is the parallel critical path the
  /// live plane's decide-latency record reports in multi-cluster mode,
  /// unlike the *modeled* per-instance latency of lastDecideNs().
  [[nodiscard]] std::int64_t lastDecideWallNs() const noexcept {
    return lastDecideWallNs_;
  }

  /// Worker budget for the parallel plan phase (cluster.decideJobs):
  /// 1 = serial fast path, 0 = util::defaultJobs() (the DIKE_JOBS knob),
  /// N = at most N concurrent cluster plans. An execution knob only — any
  /// value produces byte-identical decisions, reports, and checkpoints.
  void setDecideJobs(int jobs);
  [[nodiscard]] int decideJobs() const noexcept {
    return config_.cluster.decideJobs;
  }

 protected:
  void saveExtraState(ckpt::BinWriter& w) const override;
  void loadExtraState(ckpt::BinReader& r) override;

 private:
  /// White-box seam for the rebalance-cadence regression tests (the
  /// warmup early-return is unreachable through onQuantum, which always
  /// observes before rebalancing).
  friend struct ClusteredSchedulerTestPeer;

  [[nodiscard]] bool flatMode() const noexcept {
    return configuredClusters_ <= 1;
  }
  [[nodiscard]] DikeConfig clusterConfig() const;
  void resolveGeometry(int coreCount);
  void scatterSample(const sched::SchedulerView& view);
  void rebalance(sched::SchedulerView& view);
  void refreshAggregates(bool anyActed);
  /// decideJobs resolved against DIKE_JOBS and the cluster count.
  [[nodiscard]] int effectiveDecideJobs() const;

  int configuredClusters_;
  int clusterCount_ = 0;  ///< resolved (min(configured, cores)); 0 = not yet
  std::vector<int> clusterOfCore_;
  std::vector<std::unique_ptr<DikeScheduler>> clusters_;
  /// Per-cluster sample buffers; capacity persists across quanta.
  std::vector<sim::QuantumSample> clusterSamples_;
  /// Cluster-scoped child views of the current quantum's parent view.
  /// Rebuilt (and cleared — they hold a pointer to the parent) every
  /// quantum; a vector only so plan and commit share one set of views.
  std::vector<sched::SchedulerView> childViews_;
  /// Per-cluster phase timings of the last quantum (scratch).
  std::vector<std::int64_t> planNs_;
  std::vector<std::int64_t> commitNs_;

  // Rebalancer state (serialized — cadence survives restore).
  int quantaSinceRebalance_ = 0;
  int imbalanceStreak_ = 0;
  std::int64_t rebalanceMoves_ = 0;

  std::int64_t lastDecideNs_ = 0;
  std::int64_t lastScatterNs_ = 0;
  std::int64_t lastDecideWallNs_ = 0;
};

}  // namespace dike::core
