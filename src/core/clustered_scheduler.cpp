#include "core/clustered_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "ckpt/archive.hpp"
#include "telemetry/live.hpp"
#include "telemetry/registry.hpp"
#include "util/task_pool.hpp"
#include "util/types.hpp"

namespace dike::core {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t nsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

}  // namespace

ClusteredDikeScheduler::ClusteredDikeScheduler(DikeConfig config)
    : DikeScheduler(config), configuredClusters_(config.cluster.clusters) {
  if (config.cluster.clusters < 0)
    throw std::invalid_argument{"cluster.clusters must be >= 0"};
  if (config.cluster.rebalanceQuanta <= 0)
    throw std::invalid_argument{"cluster.rebalanceQuanta must be > 0"};
  if (config.cluster.rebalanceThreshold <= 0.0)
    throw std::invalid_argument{"cluster.rebalanceThreshold must be > 0"};
  if (config.cluster.rebalanceStreak <= 0)
    throw std::invalid_argument{"cluster.rebalanceStreak must be > 0"};
  if (config.cluster.rebalanceBudget <= 0)
    throw std::invalid_argument{"cluster.rebalanceBudget must be > 0"};
  if (config.cluster.decideJobs < 0)
    throw std::invalid_argument{"cluster.decideJobs must be >= 0"};
}

void ClusteredDikeScheduler::setDecideJobs(int jobs) {
  if (jobs < 0) throw std::invalid_argument{"decideJobs must be >= 0"};
  config_.cluster.decideJobs = jobs;
}

int ClusteredDikeScheduler::effectiveDecideJobs() const {
  const int configured = config_.cluster.decideJobs;
  const int resolved = configured == 0 ? util::defaultJobs() : configured;
  // More workers than clusters would only idle; clusterCount_ is 0 before
  // the first quantum, so floor at 1.
  return std::min(resolved, std::max(clusterCount_, 1));
}

std::string_view ClusteredDikeScheduler::name() const {
  // Flat mode is the equivalence contract: same policy name (checkpoints
  // taken flat restore here and vice versa), same everything.
  return flatMode() ? DikeScheduler::name() : "dike-clustered";
}

DikeConfig ClusteredDikeScheduler::clusterConfig() const {
  DikeConfig sub = configuration();
  // The sub-schedulers must not recurse into clustering, and per-cluster
  // adaptive quantum lengths would desynchronise the clusters from the one
  // machine-wide quantum cadence this object reports via quantumTicks() —
  // clustered mode therefore runs fixed parameters per cluster.
  sub.cluster = ClusterConfig{};
  sub.cluster.clusters = 0;
  sub.goal = AdaptationGoal::None;
  return sub;
}

void ClusteredDikeScheduler::resolveGeometry(int coreCount) {
  clusterCount_ = std::min(configuredClusters_, coreCount);
  clusterOfCore_.resize(static_cast<std::size_t>(coreCount));
  for (int c = 0; c < coreCount; ++c) {
    // Contiguous equal chunks in core-id order. Core ids are socket-major
    // (sim/topology numbers socket 0's cores first), so whenever K divides
    // the socket count every cluster is a whole group of sockets.
    clusterOfCore_[static_cast<std::size_t>(c)] = static_cast<int>(
        static_cast<std::int64_t>(c) * clusterCount_ / coreCount);
  }
  clusters_.clear();
  clusters_.reserve(static_cast<std::size_t>(clusterCount_));
  for (int k = 0; k < clusterCount_; ++k)
    clusters_.push_back(std::make_unique<DikeScheduler>(clusterConfig()));
  clusterSamples_.resize(static_cast<std::size_t>(clusterCount_));
}

void ClusteredDikeScheduler::scatterSample(const sched::SchedulerView& view) {
  const sim::QuantumSample& sample = view.sample();
  for (sim::QuantumSample& s : clusterSamples_) {
    s.periodTicks = sample.periodTicks;
    s.threads.clear();
    // Full-size bandwidth vector with foreign entries zeroed: the cluster
    // observer indexes it by global core id, and its foreign-core guards
    // never read the zeros into an estimate.
    s.coreAchievedBw.assign(sample.coreAchievedBw.size(), 0.0);
  }
  for (const sim::ThreadSample& t : sample.threads) {
    // Rows without a core (finished threads) are invisible to every
    // observer regardless of routing; drop them instead of guessing.
    if (t.coreId < 0) continue;
    const int k = clusterOfCore_[static_cast<std::size_t>(t.coreId)];
    clusterSamples_[static_cast<std::size_t>(k)].threads.push_back(t);
  }
  for (std::size_t c = 0; c < sample.coreAchievedBw.size(); ++c) {
    const int k = clusterOfCore_[c];
    clusterSamples_[static_cast<std::size_t>(k)].coreAchievedBw[c] =
        sample.coreAchievedBw[c];
  }
}

void ClusteredDikeScheduler::onQuantum(sched::SchedulerView& view) {
  if (flatMode()) {
    const auto start = Clock::now();
    DikeScheduler::onQuantum(view);
    lastDecideNs_ = nsSince(start);
    lastScatterNs_ = 0;
    return;
  }

  DIKE_SCOPE_TIMER("core.dike.clustered_quantum");
  if (clusters_.empty()) resolveGeometry(view.coreCount());

  const auto scatterStart = Clock::now();
  scatterSample(view);
  lastScatterNs_ = nsSince(scatterStart);

  const auto decideStart = Clock::now();

  // Child views and per-cluster wiring, rebuilt every quantum (the views
  // hold a pointer to this quantum's parent view).
  childViews_.clear();
  childViews_.reserve(static_cast<std::size_t>(clusterCount_));
  for (int k = 0; k < clusterCount_; ++k) {
    DikeScheduler& sub = *clusters_[static_cast<std::size_t>(k)];
    sub.setFaultsActiveHint(faultsActiveHint());
    sub.setDecisionTrace(decisionTrace());
    childViews_.emplace_back(
        view, clusterSamples_[static_cast<std::size_t>(k)], clusterOfCore_, k);
  }
  planNs_.assign(static_cast<std::size_t>(clusterCount_), 0);
  commitNs_.assign(static_cast<std::size_t>(clusterCount_), 0);

  // Plan phase: every cluster observes/predicts/selects over its own state
  // and a read-only view. The instances are independent by construction
  // (cluster-local samples, actuations never cross cluster lines, foreign
  // cores read as a sentinel), so the shared pool may run plans
  // concurrently — and decideJobs=1 runs the *same* plan-all-then-
  // commit-all sequence inline, which is what keeps every jobs value
  // byte-identical.
  const int jobs = effectiveDecideJobs();
  const auto planOne = [this](std::size_t k) {
    const auto start = Clock::now();
    clusters_[k]->planQuantum(childViews_[k]);
    planNs_[k] = nsSince(start);
  };
  if (jobs <= 1) {
    for (std::size_t k = 0; k < clusters_.size(); ++k) planOne(k);
  } else {
    util::TaskPool::shared().forEach(clusters_.size(), planOne, jobs);
  }

  // Commit phase: serial, ascending cluster order — actuations with their
  // hook / fault-injector feedback, decision-trace appends, counters. This
  // is the order the fully-serial pipeline actuated in, so traces, faults,
  // and checkpoints are unchanged.
  bool anyActed = false;
  std::int64_t maxClusterNs = 0;
  for (int k = 0; k < clusterCount_; ++k) {
    const std::size_t kk = static_cast<std::size_t>(k);
    const auto start = Clock::now();
    clusters_[kk]->commitQuantum(childViews_[kk]);
    commitNs_[kk] = nsSince(start);
    anyActed = anyActed || clusters_[kk]->lastQuantumStats().acted;
    maxClusterNs = std::max(maxClusterNs, planNs_[kk] + commitNs_[kk]);
  }

  const auto rebalanceStart = Clock::now();
  rebalance(view);
  // Modeled per-instance latency: as deployed each cluster instance runs on
  // its own socket, so the slowest plan+commit, plus the rebalancer, is the
  // quantum's decide latency regardless of how this process executed it.
  lastDecideNs_ = maxClusterNs + nsSince(rebalanceStart);

  refreshAggregates(anyActed);
  lastDecideWallNs_ = nsSince(decideStart);
  // One decide-latency record per quantum: the wall-clock critical path of
  // the (possibly parallel) decide step, which is what an online scheduler
  // would actually steal from the applications.
  if (telemetry::liveEnabled())
    telemetry::publish(telemetry::EventKind::DecideLatency,
                       static_cast<std::uint32_t>(quantumIndex_), view.now(),
                       static_cast<double>(lastDecideWallNs_));
  ++quantumIndex_;
  childViews_.clear();  // the parent view dies when this call returns
}

void ClusteredDikeScheduler::rebalance(sched::SchedulerView& view) {
  if (++quantaSinceRebalance_ < config_.cluster.rebalanceQuanta) return;

  // Cheap top-level signal: each cluster's own unfairness, already computed
  // by its observer this quantum — O(K) to inspect.
  int worst = -1, best = -1;
  double worstU = 0.0, bestU = 0.0;
  for (int k = 0; k < clusterCount_; ++k) {
    const Observer& obs =
        clusters_[static_cast<std::size_t>(k)]->observer();
    // Too early to judge imbalance. Return with the cadence counter still
    // accumulated (it only resets below, once every cluster is warm), so
    // the attempt retries next quantum instead of silently waiting out a
    // whole fresh cadence.
    if (!obs.ready()) return;
    const double u = obs.systemUnfairness();
    if (worst < 0 || u > worstU) worst = k, worstU = u;
    if (best < 0 || u < bestU) best = k, bestU = u;
  }
  quantaSinceRebalance_ = 0;
  if (worst < 0 || worst == best ||
      worstU - bestU <= config_.cluster.rebalanceThreshold) {
    imbalanceStreak_ = 0;
    return;
  }
  if (++imbalanceStreak_ < config_.cluster.rebalanceStreak) return;
  imbalanceStreak_ = 0;

  // Sustained imbalance: move whole threads from the worst cluster to the
  // best one. Most-starved donors first; land on a free core when the
  // recipient has one, otherwise swap against the recipient's most-surplus
  // thread. Everything goes through the *parent* view, so hooks fire and
  // the adapter's totals count these like any other actuation.
  const Observer& donor = clusters_[static_cast<std::size_t>(worst)]->observer();
  const Observer& recipient =
      clusters_[static_cast<std::size_t>(best)]->observer();

  std::vector<const ThreadInfo*> starved;
  for (const ThreadInfo& t : donor.threadsByAccessRate())
    if (t.deficit > 0.0) starved.push_back(&t);
  std::sort(starved.begin(), starved.end(),
            [](const ThreadInfo* a, const ThreadInfo* b) {
              if (a->deficit != b->deficit) return a->deficit > b->deficit;
              return a->threadId < b->threadId;
            });

  int moved = 0;
  int freeScan = 0;  // resume point into the recipient's core range
  std::size_t surplusIdx = 0;
  const std::vector<ThreadInfo>& recipientThreads =
      recipient.threadsByAccessRate();
  std::vector<const ThreadInfo*> surplus;
  for (const ThreadInfo& t : recipientThreads) surplus.push_back(&t);
  std::sort(surplus.begin(), surplus.end(),
            [](const ThreadInfo* a, const ThreadInfo* b) {
              if (a->deficit != b->deficit) return a->deficit < b->deficit;
              return a->threadId < b->threadId;
            });

  for (const ThreadInfo* t : starved) {
    if (moved >= config_.cluster.rebalanceBudget) break;
    // Free core in the recipient cluster?
    int dest = -1;
    for (; freeScan < view.coreCount(); ++freeScan) {
      if (clusterOfCore_[static_cast<std::size_t>(freeScan)] != best) continue;
      if (view.coreOccupant(freeScan) == -1) {
        dest = freeScan++;
        break;
      }
    }
    if (dest >= 0) {
      if (!view.migrateTo(t->threadId, dest)) continue;
    } else if (surplusIdx < surplus.size()) {
      const ThreadInfo* partner = surplus[surplusIdx++];
      if (!view.swap(t->threadId, partner->threadId)) continue;
    } else {
      break;  // recipient is full and has no partner left
    }
    ++moved;
    ++rebalanceMoves_;
    DIKE_COUNTER("core.dike.cluster_rebalance_move");
  }
}

void ClusteredDikeScheduler::refreshAggregates(bool anyActed) {
  // Keep every aggregate a DikeScheduler consumer reads (reports, metrics
  // listeners, the soak checker all dynamic_cast to the base) meaningful:
  // counters sum across clusters; unfairness is the worst cluster (one
  // starving cluster is an unfair machine); the workload class follows the
  // worst cluster too, since that is the cluster the signal describes.
  QuantumDecisionStats agg;
  agg.quantumIndex = quantumIndex_;
  agg.acted = anyActed;
  agg.params = params_;
  double worstU = -1.0;
  std::int64_t swaps = 0;
  DecisionTotals totals;
  for (const auto& sub : clusters_) {
    const QuantumDecisionStats& s = sub->lastQuantumStats();
    agg.pairsConsidered += s.pairsConsidered;
    agg.pairsRejectedCooldown += s.pairsRejectedCooldown;
    agg.pairsRejectedProfit += s.pairsRejectedProfit;
    agg.swapsExecuted += s.swapsExecuted;
    agg.swapsFailed += s.swapsFailed;
    agg.migrationsFailed += s.migrationsFailed;
    agg.fallbackActive = agg.fallbackActive || s.fallbackActive;
    if (s.unfairness > worstU) {
      worstU = s.unfairness;
      agg.workloadType = s.workloadType;
    }
    const DecisionTotals& t = sub->decisionTotals();
    totals.actedQuanta = std::max(totals.actedQuanta, t.actedQuanta);
    totals.pairsConsidered += t.pairsConsidered;
    totals.rejectedCooldown += t.rejectedCooldown;
    totals.rejectedProfit += t.rejectedProfit;
    totals.swapsExecuted += t.swapsExecuted;
    totals.swapsFailed += t.swapsFailed;
    totals.migrationsFailed += t.migrationsFailed;
    totals.fallbackQuanta += t.fallbackQuanta;
    totals.fallbackEngagements += t.fallbackEngagements;
    totals.divergenceResets += t.divergenceResets;
    swaps += sub->totalSwaps();
  }
  agg.unfairness = std::max(worstU, 0.0);
  lastStats_ = agg;
  // Wall quanta, not the sum of per-cluster quanta (every cluster runs in
  // the same machine quantum); actedQuanta is the busiest cluster's count,
  // bounded by wall quanta by construction.
  totals.quanta = quantumIndex_ + 1;
  totals_ = totals;
  totalSwaps_ = swaps;
}

void ClusteredDikeScheduler::saveExtraState(ckpt::BinWriter& w) const {
  // Flat mode writes exactly the base layout: a flat checkpoint and a
  // 1-cluster checkpoint are interchangeable (byte-identical).
  DikeScheduler::saveExtraState(w);
  if (flatMode()) return;
  w.beginSection("clustered");
  w.i64("clusterCount", clusterCount_);
  w.vecInt("clusterOfCore", clusterOfCore_);
  w.i64("quantaSinceRebalance", quantaSinceRebalance_);
  w.i64("imbalanceStreak", imbalanceStreak_);
  w.i64("rebalanceMoves", rebalanceMoves_);
  w.endSection();
  for (int k = 0; k < clusterCount_; ++k) {
    w.beginSection("cluster" + std::to_string(k));
    clusters_[static_cast<std::size_t>(k)]->saveState(w);
    w.endSection();
  }
}

void ClusteredDikeScheduler::loadExtraState(ckpt::BinReader& r) {
  DikeScheduler::loadExtraState(r);
  if (flatMode()) return;
  r.beginSection("clustered");
  const int count = util::checkedInt<ckpt::CheckpointError>(
      r.i64("clusterCount"), "clustered checkpoint: clusterCount");
  std::vector<int> clusterOfCore = r.vecInt("clusterOfCore");
  const int quantaSince = util::checkedInt<ckpt::CheckpointError>(
      r.i64("quantaSinceRebalance"),
      "clustered checkpoint: quantaSinceRebalance");
  const int streak = util::checkedInt<ckpt::CheckpointError>(
      r.i64("imbalanceStreak"), "clustered checkpoint: imbalanceStreak");
  const std::int64_t moves = r.i64("rebalanceMoves");
  r.endSection();
  if (count < 0 || (count == 0 && !clusterOfCore.empty()))
    throw ckpt::CheckpointError{
        "clustered checkpoint: inconsistent cluster geometry"};
  for (const int k : clusterOfCore)
    if (k < 0 || k >= std::max(count, 1))
      throw ckpt::CheckpointError{
          "clustered checkpoint: clusterOfCore entry out of range"};

  // Rebuild the per-cluster instances from the serialized geometry, then
  // restore each one; a schema failure inside cluster j leaves this object
  // with fewer restored clusters, but the thrown error aborts the whole
  // scheduler restore anyway (Scheduler::loadState propagates).
  clusterCount_ = count;
  clusterOfCore_ = std::move(clusterOfCore);
  quantaSinceRebalance_ = quantaSince;
  imbalanceStreak_ = streak;
  rebalanceMoves_ = moves;
  clusters_.clear();
  clusterSamples_.clear();
  clusters_.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k)
    clusters_.push_back(std::make_unique<DikeScheduler>(clusterConfig()));
  clusterSamples_.resize(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    r.beginSection("cluster" + std::to_string(k));
    clusters_[static_cast<std::size_t>(k)]->loadState(r);
    r.endSection();
  }
}

}  // namespace dike::core
