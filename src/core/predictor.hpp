// Predictor: the closed-loop swap-profit model (Section III-C, Eqns 1-3).
//
// For a candidate pair <t_low, t_high> the predictor estimates each
// thread's memory access rate after the swap: a migrating thread is assumed
// to consume its destination core's demonstrated bandwidth (CoreBW), minus
// the context-switch overhead amortised over the quantum. The model is
// deliberately simple — its residual error is absorbed by the closed loop,
// because CoreBW itself is re-measured every quantum.
#pragma once

#include "core/observer.hpp"
#include "core/selector.hpp"
#include "util/types.hpp"

namespace dike::core {

/// The profit estimate for one candidate swap.
struct SwapPrediction {
  ThreadPair pair{};
  double profitLow = 0.0;    ///< Eqn 1 for the low-access thread
  double profitHigh = 0.0;   ///< Eqn 1 for the high-access thread
  double totalProfit = 0.0;  ///< Eqn 3
  /// Post-swap access-rate estimates (used for prediction-error tracking).
  double predictedRateLow = 0.0;
  double predictedRateHigh = 0.0;
};

struct PredictorConfig {
  /// swapOH: average time a thread spends migrating, in milliseconds.
  double swapOhMs = 3.0;
};

class Predictor {
 public:
  explicit Predictor(PredictorConfig config = {});

  /// Evaluate Eqns 1-3 for one pair under the current quantum length.
  [[nodiscard]] SwapPrediction predict(const Observer& observer,
                                       const ThreadPair& pair,
                                       int quantaLengthMs) const;

  /// Post-migration access-rate estimate for one thread: a memory-intensive
  /// migrant is assumed to consume the destination core's demonstrated
  /// bandwidth (the paper's Eqn 1 assumption); a compute-intensive migrant
  /// keeps its own demand scaled by the cores' capability ratio.
  [[nodiscard]] double predictMigratedRate(const Observer& observer,
                                           const ThreadInfo& thread,
                                           int destCore) const;

  [[nodiscard]] const PredictorConfig& config() const noexcept {
    return config_;
  }

 private:
  PredictorConfig config_;
};

}  // namespace dike::core
