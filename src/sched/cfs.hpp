// Baseline: the Linux completely fair scheduler, as it behaves for the
// paper's setup (one runnable thread per hardware thread).
//
// CFS equalises *CPU time*, which every thread already receives in a
// one-thread-per-core configuration, so it performs no contention- or
// heterogeneity-aware migration at all: threads stay wherever wakeup
// balancing first put them (see placement.hpp). This is the zero-improvement
// baseline of Figure 6.
#pragma once

#include "sched/scheduler.hpp"

namespace dike::sched {

class CfsScheduler final : public Scheduler {
 public:
  explicit CfsScheduler(util::Tick quantumTicks = 500);

  [[nodiscard]] std::string_view name() const override { return "cfs"; }
  [[nodiscard]] util::Tick quantumTicks() const override { return quantum_; }
  void onQuantum(SchedulerView& view) override;

 private:
  util::Tick quantum_;
};

}  // namespace dike::sched
