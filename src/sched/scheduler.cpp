#include "sched/scheduler.hpp"

#include <string>

#include "ckpt/archive.hpp"

namespace dike::sched {

void Scheduler::saveState(ckpt::BinWriter& w) const {
  w.beginSection("scheduler");
  w.str("policy", name());
  saveExtraState(w);
  w.endSection();
}

void Scheduler::loadState(ckpt::BinReader& r) {
  r.beginSection("scheduler");
  const std::string policy = r.str("policy");
  if (policy != name())
    throw ckpt::CheckpointError{
        "checkpoint was taken under scheduler '" + policy +
        "' but this run uses '" + std::string{name()} +
        "' — nothing was restored"};
  loadExtraState(r);
  r.endSection();
}

void Scheduler::saveExtraState(ckpt::BinWriter&) const {}

void Scheduler::loadExtraState(ckpt::BinReader&) {}

SchedulerView::SchedulerView(sim::Machine& machine,
                             const sim::QuantumSample& sample,
                             ActuationHook* hook)
    : machine_(&machine), sample_(&sample), hook_(hook) {}

SchedulerView::SchedulerView(SchedulerView& parent,
                             const sim::QuantumSample& clusterSample,
                             const std::vector<int>& clusterOfCore,
                             int cluster)
    : machine_(parent.machine_),
      sample_(&clusterSample),
      hook_(nullptr),  // the parent applies its hook when we delegate
      parent_(&parent),
      clusterOfCore_(&clusterOfCore),
      cluster_(cluster) {}

int SchedulerView::coreCount() const {
  return machine_->topology().coreCount();
}

int SchedulerView::socketCount() const {
  return machine_->topology().socketCount();
}

int SchedulerView::socketOf(int coreId) const {
  return machine_->topology().core(coreId).socket;
}

int SchedulerView::coreOccupant(int coreId) const {
  if (clusterOfCore_ != nullptr &&
      (*clusterOfCore_)[static_cast<std::size_t>(coreId)] != cluster_)
    return kForeignCore;
  return machine_->coreOccupant(coreId);
}

util::Tick SchedulerView::now() const { return machine_->now(); }

bool SchedulerView::swap(int threadA, int threadB) {
  if (parent_ != nullptr) return parent_->swap(threadA, threadB);
  if (hook_ != nullptr && !hook_->onSwapAttempt(threadA, threadB, now())) {
    ++failedActuations_;
    return false;
  }
  machine_->swapThreads(threadA, threadB);
  ++swaps_;
  return true;
}

bool SchedulerView::migrateTo(int threadId, int coreId) {
  if (parent_ != nullptr) return parent_->migrateTo(threadId, coreId);
  if (hook_ != nullptr && !hook_->onMigrationAttempt(threadId, coreId, now())) {
    ++failedActuations_;
    return false;
  }
  machine_->migrateThread(threadId, coreId);
  ++migrations_;
  return true;
}

void SchedulerView::suspend(int threadId) { machine_->suspendThread(threadId); }

void SchedulerView::resume(int threadId) { machine_->resumeThread(threadId); }

bool SchedulerView::isSuspended(int threadId) const {
  return machine_->isSuspended(threadId);
}

void SchedulerAdapter::onQuantum(sim::Machine& machine) {
  // The sample snapshot reuses one member buffer across quanta: per-thread
  // rows and per-core bandwidths keep their capacity, so steady-state quanta
  // allocate nothing here.
  machine.sampleAndResetInto(sampleScratch_);
  sim::QuantumSample& sample = sampleScratch_;
  if (filter_ != nullptr) filter_->filterSample(sample, machine.now());
  SchedulerView view{machine, sample, hook_};
  scheduler_->onQuantum(view);
  if (listener_ != nullptr)
    listener_->afterQuantum(machine, view, *scheduler_);
  swaps_ += view.swapsThisQuantum();
  ++quanta_;
}

}  // namespace dike::sched
