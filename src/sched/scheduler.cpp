#include "sched/scheduler.hpp"

namespace dike::sched {

SchedulerView::SchedulerView(sim::Machine& machine,
                             const sim::QuantumSample& sample)
    : machine_(&machine), sample_(&sample) {}

int SchedulerView::coreCount() const {
  return machine_->topology().coreCount();
}

int SchedulerView::socketCount() const {
  return machine_->topology().socketCount();
}

int SchedulerView::socketOf(int coreId) const {
  return machine_->topology().core(coreId).socket;
}

int SchedulerView::coreOccupant(int coreId) const {
  return machine_->coreOccupant(coreId);
}

util::Tick SchedulerView::now() const { return machine_->now(); }

void SchedulerView::swap(int threadA, int threadB) {
  machine_->swapThreads(threadA, threadB);
  ++swaps_;
}

void SchedulerView::migrateTo(int threadId, int coreId) {
  machine_->migrateThread(threadId, coreId);
  ++migrations_;
}

void SchedulerView::suspend(int threadId) { machine_->suspendThread(threadId); }

void SchedulerView::resume(int threadId) { machine_->resumeThread(threadId); }

bool SchedulerView::isSuspended(int threadId) const {
  return machine_->isSuspended(threadId);
}

void SchedulerAdapter::onQuantum(sim::Machine& machine) {
  const sim::QuantumSample sample = machine.sampleAndReset();
  SchedulerView view{machine, sample};
  scheduler_->onQuantum(view);
  if (listener_ != nullptr)
    listener_->afterQuantum(machine, view, *scheduler_);
  swaps_ += view.swapsThisQuantum();
  ++quanta_;
}

}  // namespace dike::sched
