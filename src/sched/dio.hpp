// Distributed Intensity Online (DIO) — Zhuravlev et al., ASPLOS 2010 — as
// characterised in the paper (Section IV-A): each quantum the scheduler
// measures every thread's LLC miss rate, sorts threads from highest to
// lowest, pairs the i-th highest with the i-th lowest, and swaps each pair.
// DIO is contention-aware but heterogeneity-unaware and performs no
// prediction or fairness check, so it keeps swapping every quantum for the
// whole run, "ignoring the overhead of thread migrations" — the state of
// the art Dike is measured against.
//
// The per-quantum pair budget defaults to 4, which reproduces the swap
// cadence implied by the paper's Table III (DIO averages ~2100 swaps over
// runs of ~600 quanta, i.e. ~3.5 pairs per quantum): DIO migrates the most
// extreme intensity mismatches, not the whole thread list.
#pragma once

#include "sched/scheduler.hpp"

namespace dike::sched {

class DioScheduler final : public Scheduler {
 public:
  /// quantumTicks defaults to the paper's 500 ms quantum.
  explicit DioScheduler(util::Tick quantumTicks = 500,
                        int maxPairsPerQuantum = 4);

  [[nodiscard]] std::string_view name() const override { return "dio"; }
  [[nodiscard]] util::Tick quantumTicks() const override { return quantum_; }
  void onQuantum(SchedulerView& view) override;

 private:
  util::Tick quantum_;
  int maxPairs_;
};

}  // namespace dike::sched
