#include "sched/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace dike::sched {

namespace {

std::vector<int> unplacedThreads(const sim::Machine& machine) {
  std::vector<int> ids;
  for (const sim::SimThread& t : machine.threads())
    if (t.coreId < 0 && !t.finished) ids.push_back(t.id);
  return ids;
}

std::vector<int> freeCores(const sim::Machine& machine) {
  std::vector<int> ids;
  for (int c = 0; c < machine.topology().coreCount(); ++c)
    if (machine.coreOccupant(c) == -1) ids.push_back(c);
  return ids;
}

void placeInOrder(sim::Machine& machine, const std::vector<int>& threads,
                  const std::vector<int>& cores) {
  if (threads.size() > cores.size())
    throw std::logic_error{"more threads than free cores"};
  for (std::size_t i = 0; i < threads.size(); ++i)
    machine.placeThread(threads[i], cores[i]);
}

}  // namespace

void placeContiguous(sim::Machine& machine) {
  placeInOrder(machine, unplacedThreads(machine), freeCores(machine));
}

void placeRandom(sim::Machine& machine, std::uint64_t seed) {
  std::vector<int> threads = unplacedThreads(machine);
  std::vector<int> cores = freeCores(machine);
  util::Rng rng{seed};
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = cores.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(cores[i - 1], cores[j]);
  }
  placeInOrder(machine, threads, cores);
}

void placeSpread(sim::Machine& machine) {
  std::vector<int> cores = freeCores(machine);
  const sim::MachineTopology& topo = machine.topology();
  std::stable_sort(cores.begin(), cores.end(), [&](int a, int b) {
    const sim::CoreDesc& ca = topo.core(a);
    const sim::CoreDesc& cb = topo.core(b);
    if (ca.smtIndex != cb.smtIndex) return ca.smtIndex < cb.smtIndex;
    if (ca.freqGhz != cb.freqGhz) return ca.freqGhz > cb.freqGhz;
    return ca.id < cb.id;
  });
  placeInOrder(machine, unplacedThreads(machine), cores);
}

void placeOracle(sim::Machine& machine) {
  const sim::MachineTopology& topo = machine.topology();

  std::vector<int> cores = freeCores(machine);
  std::stable_sort(cores.begin(), cores.end(), [&](int a, int b) {
    const sim::CoreDesc& ca = topo.core(a);
    const sim::CoreDesc& cb = topo.core(b);
    if (ca.freqGhz != cb.freqGhz) return ca.freqGhz > cb.freqGhz;
    return ca.id < cb.id;
  });

  std::vector<int> threads = unplacedThreads(machine);
  std::stable_sort(threads.begin(), threads.end(), [&](int a, int b) {
    const bool ma =
        machine.process(machine.thread(a).processId).memoryIntensive;
    const bool mb =
        machine.process(machine.thread(b).processId).memoryIntensive;
    if (ma != mb) return ma;  // memory-intensive threads claim fast cores
    return a < b;
  });

  placeInOrder(machine, threads, cores);
}

}  // namespace dike::sched
