// Additional reference policy beyond the paper's comparison set:
// RandomScheduler swaps random pairs every quantum. A control baseline: it
// mixes core types like DIO but without any intensity signal, so the gap
// between Random and DIO isolates the value of contention awareness, and
// the gap between DIO and Dike the value of prediction.
//
// (The other natural reference — a ground-truth-ideal *static* placement —
// is a placement policy, not a scheduler: see sched::placeOracle, selected
// through exp::RunSpec::placement.)
#pragma once

#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace dike::sched {

class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(util::Tick quantumTicks = 500,
                           int pairsPerQuantum = 4,
                           std::uint64_t seed = 0x5EEDu);

  [[nodiscard]] std::string_view name() const override { return "random"; }
  [[nodiscard]] util::Tick quantumTicks() const override { return quantum_; }
  void onQuantum(SchedulerView& view) override;

 protected:
  void saveExtraState(ckpt::BinWriter& w) const override;
  void loadExtraState(ckpt::BinReader& r) override;

 private:
  util::Tick quantum_;
  int pairs_;
  util::Rng rng_;
};

}  // namespace dike::sched
