// Initial thread placement policies.
//
// Every scheduling policy starts from an initial thread-to-core assignment;
// contention-aware policies then correct it. The baseline (Linux CFS)
// placement is modelled as a seeded random assignment: with one runnable
// thread per hardware thread, CFS keeps threads where its contention- and
// heterogeneity-oblivious wakeup balancing first put them.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace dike::sched {

/// Thread i on vcore i, in creation order.
void placeContiguous(sim::Machine& machine);

/// Seeded random permutation of threads onto vcores — the CFS model.
void placeRandom(sim::Machine& machine, std::uint64_t seed);

/// Spread threads across physical cores before doubling up SMT siblings,
/// preferring nominally fast cores; models the placement an OS reaches for
/// an underloaded machine (used for the standalone runs of Figure 1).
void placeSpread(sim::Machine& machine);

/// Ground-truth oracle: memory-intensive processes' threads onto the
/// highest-frequency cores first. Not a real policy (uses labels schedulers
/// cannot see); serves as an upper-bound reference in tests and ablations.
void placeOracle(sim::Machine& machine);

}  // namespace dike::sched
