#include "sched/dio.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace dike::sched {

DioScheduler::DioScheduler(util::Tick quantumTicks, int maxPairsPerQuantum)
    : quantum_(quantumTicks), maxPairs_(maxPairsPerQuantum) {
  if (quantum_ < 1) throw std::invalid_argument{"quantum must be >= 1 tick"};
  if (maxPairs_ < 1) throw std::invalid_argument{"maxPairs must be >= 1"};
}

void DioScheduler::onQuantum(SchedulerView& view) {
  // Live threads only; a finished thread's core is already free.
  std::vector<const sim::ThreadSample*> live;
  for (const sim::ThreadSample& s : view.sample().threads)
    if (!s.finished && s.coreId >= 0) live.push_back(&s);
  if (live.size() < 2) return;

  // Sort by LLC miss rate, highest first (DIO's intensity ordering).
  std::sort(live.begin(), live.end(),
            [](const sim::ThreadSample* a, const sim::ThreadSample* b) {
              if (a->llcMissRatio != b->llcMissRatio)
                return a->llcMissRatio > b->llcMissRatio;
              if (a->accessRate != b->accessRate)
                return a->accessRate > b->accessRate;
              return a->threadId < b->threadId;
            });

  // Pair top with bottom and swap every pair whose intensities actually
  // differ — exchanging two threads of equal miss rate redistributes
  // nothing. (Identical cores cannot occur: each live thread occupies a
  // distinct core.)
  constexpr double kEqualMissMargin = 0.02;
  const std::size_t pairs =
      std::min(live.size() / 2, static_cast<std::size_t>(maxPairs_));
  for (std::size_t i = 0; i < pairs; ++i) {
    const sim::ThreadSample* high = live[i];
    const sim::ThreadSample* low = live[live.size() - 1 - i];
    if (high->llcMissRatio - low->llcMissRatio < kEqualMissMargin) continue;
    (void)view.swap(high->threadId, low->threadId);
  }
}

}  // namespace dike::sched
