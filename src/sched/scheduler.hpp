// Contention-aware scheduler framework.
//
// A Scheduler is invoked once per quantum with a SchedulerView: the quantum's
// performance-counter sample plus the migration interface. The view is the
// *only* surface schedulers get — they cannot read simulator ground truth
// (core frequencies, phase programs, true memory intensities), mirroring
// what a software scheduler can observe on real hardware (Section III:
// Dike requires no a priori knowledge).
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/machine.hpp"
#include "util/types.hpp"

namespace dike::sched {

/// Per-quantum window a scheduler operates through.
class SchedulerView {
 public:
  SchedulerView(sim::Machine& machine, const sim::QuantumSample& sample);

  /// Counter readings for the quantum that just ended.
  [[nodiscard]] const sim::QuantumSample& sample() const noexcept {
    return *sample_;
  }

  // Observable topology (an OS can always read this from sysfs).
  [[nodiscard]] int coreCount() const;
  [[nodiscard]] int socketCount() const;
  [[nodiscard]] int socketOf(int coreId) const;
  /// Thread currently occupying a core, or -1.
  [[nodiscard]] int coreOccupant(int coreId) const;

  [[nodiscard]] util::Tick now() const;

  /// Exchange the cores of two live threads (one swap = two migrations).
  void swap(int threadA, int threadB);

  /// Move a live thread to a currently free core (a single migration).
  void migrateTo(int threadId, int coreId);

  /// Suspension enforcement (for policies that pause instead of migrate).
  void suspend(int threadId);
  void resume(int threadId);
  [[nodiscard]] bool isSuspended(int threadId) const;

  /// Swaps performed through this view during the current quantum.
  [[nodiscard]] std::int64_t swapsThisQuantum() const noexcept {
    return swaps_;
  }
  /// Free-core migrations performed through this view this quantum.
  [[nodiscard]] std::int64_t migrationsThisQuantum() const noexcept {
    return migrations_;
  }

 private:
  sim::Machine* machine_;
  const sim::QuantumSample* sample_;
  std::int64_t swaps_ = 0;
  std::int64_t migrations_ = 0;
};

/// Interface all scheduling policies implement (CFS baseline, DIO, Dike).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Current scheduling quantum in ticks; adaptive policies may return a
  /// different value after each onQuantum call.
  [[nodiscard]] virtual util::Tick quantumTicks() const = 0;

  /// Make decisions for the quantum that just ended.
  virtual void onQuantum(SchedulerView& view) = 0;
};

/// Observer of quantum boundaries, called after the scheduler has made its
/// decisions for the quantum. Telemetry sinks (the per-quantum metrics
/// stream) implement this; the sched layer stays ignorant of file formats.
class QuantumListener {
 public:
  virtual ~QuantumListener() = default;

  /// Invoked once per quantum, after Scheduler::onQuantum returned. The view
  /// still holds the quantum's counter sample plus the swap/migration tallies
  /// the scheduler just produced.
  virtual void afterQuantum(const sim::Machine& machine,
                            const SchedulerView& view,
                            Scheduler& scheduler) = 0;
};

/// Adapts a Scheduler onto the engine's QuantumPolicy hook, sampling the
/// machine's counters once per quantum and tracking swap totals.
class SchedulerAdapter final : public sim::QuantumPolicy {
 public:
  explicit SchedulerAdapter(Scheduler& scheduler) : scheduler_(&scheduler) {}

  [[nodiscard]] util::Tick quantumTicks() const override {
    return scheduler_->quantumTicks();
  }

  void onQuantum(sim::Machine& machine) override;

  [[nodiscard]] std::int64_t totalSwaps() const noexcept { return swaps_; }
  [[nodiscard]] std::int64_t quantaElapsed() const noexcept { return quanta_; }

  /// Attach (or detach with nullptr) a per-quantum telemetry listener.
  void setListener(QuantumListener* listener) noexcept {
    listener_ = listener;
  }
  [[nodiscard]] QuantumListener* listener() const noexcept {
    return listener_;
  }

 private:
  Scheduler* scheduler_;
  QuantumListener* listener_ = nullptr;
  std::int64_t swaps_ = 0;
  std::int64_t quanta_ = 0;
};

}  // namespace dike::sched
