// Contention-aware scheduler framework.
//
// A Scheduler is invoked once per quantum with a SchedulerView: the quantum's
// performance-counter sample plus the migration interface. The view is the
// *only* surface schedulers get — they cannot read simulator ground truth
// (core frequencies, phase programs, true memory intensities), mirroring
// what a software scheduler can observe on real hardware (Section III:
// Dike requires no a priori knowledge).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/machine.hpp"
#include "util/types.hpp"

namespace dike::sched {

/// Transforms the per-quantum counter sample before any scheduler sees it.
/// The fault-injection layer implements this to model dropped, corrupt, and
/// stuck counter feeds; the default (no filter) passes samples through
/// untouched, so filter-free runs are bit-identical to historical ones.
class SampleFilter {
 public:
  virtual ~SampleFilter() = default;
  virtual void filterSample(sim::QuantumSample& sample, util::Tick now) = 0;
};

/// Intercepts actuation requests (swaps and free-core migrations) before
/// they reach the machine. Returning false fails the operation: the machine
/// is left untouched and the caller is told, mirroring a sched_setaffinity
/// error on a live host. The fault layer implements this; schedulers must
/// treat a failed actuation as retryable, never as silently applied.
class ActuationHook {
 public:
  virtual ~ActuationHook() = default;
  [[nodiscard]] virtual bool onSwapAttempt(int threadA, int threadB,
                                           util::Tick now) = 0;
  [[nodiscard]] virtual bool onMigrationAttempt(int threadId, int coreId,
                                                util::Tick now) = 0;
};

/// Per-quantum window a scheduler operates through.
class SchedulerView {
 public:
  /// coreOccupant() result for a core outside a cluster-scoped view's
  /// domain. Distinct from -1 ("free"): foreign cores read as occupied (so
  /// free-core scans skip them) but the sentinel is negative (so occupant
  /// walks never mistake it for a thread id).
  static constexpr int kForeignCore = -2;

  SchedulerView(sim::Machine& machine, const sim::QuantumSample& sample,
                ActuationHook* hook = nullptr);

  /// Cluster-scoped child view: presents `clusterSample` (the parent
  /// quantum's rows filtered to one cluster) while delegating every
  /// actuation and topology query to `parent`, whose swap/migration
  /// counters keep the totals. Cores whose `clusterOfCore` entry differs
  /// from `cluster` read as kForeignCore. Used by ClusteredDikeScheduler;
  /// `parent`, and `clusterOfCore` must outlive this view.
  SchedulerView(SchedulerView& parent, const sim::QuantumSample& clusterSample,
                const std::vector<int>& clusterOfCore, int cluster);

  /// Counter readings for the quantum that just ended.
  [[nodiscard]] const sim::QuantumSample& sample() const noexcept {
    return *sample_;
  }

  // Observable topology (an OS can always read this from sysfs).
  [[nodiscard]] int coreCount() const;
  [[nodiscard]] int socketCount() const;
  [[nodiscard]] int socketOf(int coreId) const;
  /// Thread currently occupying a core, -1 when free, or kForeignCore when
  /// the core lies outside this (cluster-scoped) view's domain.
  [[nodiscard]] int coreOccupant(int coreId) const;

  [[nodiscard]] util::Tick now() const;

  /// Exchange the cores of two live threads (one swap = two migrations).
  /// Returns false when an attached ActuationHook failed the operation; the
  /// placement is then unchanged and the caller should retry later.
  [[nodiscard]] bool swap(int threadA, int threadB);

  /// Move a live thread to a currently free core (a single migration).
  /// Returns false when an attached ActuationHook failed the operation.
  [[nodiscard]] bool migrateTo(int threadId, int coreId);

  /// Suspension enforcement (for policies that pause instead of migrate).
  void suspend(int threadId);
  void resume(int threadId);
  [[nodiscard]] bool isSuspended(int threadId) const;

  /// Swaps performed through this view during the current quantum. Child
  /// views report the parent's tally (actuations land on the parent).
  [[nodiscard]] std::int64_t swapsThisQuantum() const noexcept {
    return parent_ != nullptr ? parent_->swaps_ : swaps_;
  }
  /// Free-core migrations performed through this view this quantum.
  [[nodiscard]] std::int64_t migrationsThisQuantum() const noexcept {
    return parent_ != nullptr ? parent_->migrations_ : migrations_;
  }
  /// Actuations (swaps + migrations) an ActuationHook failed this quantum.
  [[nodiscard]] std::int64_t failedActuationsThisQuantum() const noexcept {
    return parent_ != nullptr ? parent_->failedActuations_ : failedActuations_;
  }

 private:
  sim::Machine* machine_;
  const sim::QuantumSample* sample_;
  ActuationHook* hook_ = nullptr;
  /// Set on cluster-scoped child views; actuations and counters then live
  /// on the parent so adapter totals see every swap exactly once.
  SchedulerView* parent_ = nullptr;
  const std::vector<int>* clusterOfCore_ = nullptr;
  int cluster_ = -1;
  std::int64_t swaps_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t failedActuations_ = 0;
};

/// Interface all scheduling policies implement (CFS baseline, DIO, Dike).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Current scheduling quantum in ticks; adaptive policies may return a
  /// different value after each onQuantum call.
  [[nodiscard]] virtual util::Tick quantumTicks() const = 0;

  /// Make decisions for the quantum that just ended.
  virtual void onQuantum(SchedulerView& view) = 0;

  /// Serialize the policy's mutable state under a "scheduler" section that
  /// records the policy name, then delegates to saveExtraState. Stateless
  /// policies (CFS, DIO, the static oracle) need no override.
  void saveState(ckpt::BinWriter& w) const;

  /// Restore state captured by saveState. Verifies the recorded policy name
  /// against name() — restoring a checkpoint into a different policy throws
  /// ckpt::CheckpointError instead of silently misreading the stream.
  void loadState(ckpt::BinReader& r);

 protected:
  /// Hooks for stateful policies; the base implementations hold no state.
  virtual void saveExtraState(ckpt::BinWriter& w) const;
  virtual void loadExtraState(ckpt::BinReader& r);
};

/// Observer of quantum boundaries, called after the scheduler has made its
/// decisions for the quantum. Telemetry sinks (the per-quantum metrics
/// stream) implement this; the sched layer stays ignorant of file formats.
class QuantumListener {
 public:
  virtual ~QuantumListener() = default;

  /// Invoked once per quantum, after Scheduler::onQuantum returned. The view
  /// still holds the quantum's counter sample plus the swap/migration tallies
  /// the scheduler just produced.
  virtual void afterQuantum(const sim::Machine& machine,
                            const SchedulerView& view,
                            Scheduler& scheduler) = 0;
};

/// Fans one listener slot out to several listeners, in attachment order.
/// SchedulerAdapter holds a single listener pointer; runs that want both
/// the quantum-metrics stream and the live ring publisher (or the soak
/// invariant checker) chain them through this.
class QuantumListenerChain final : public QuantumListener {
 public:
  void add(QuantumListener* listener) {
    if (listener != nullptr) listeners_.push_back(listener);
  }
  [[nodiscard]] std::size_t size() const noexcept { return listeners_.size(); }

  void afterQuantum(const sim::Machine& machine, const SchedulerView& view,
                    Scheduler& scheduler) override {
    for (QuantumListener* listener : listeners_) {
      listener->afterQuantum(machine, view, scheduler);
    }
  }

 private:
  std::vector<QuantumListener*> listeners_;
};

/// Adapts a Scheduler onto the engine's QuantumPolicy hook, sampling the
/// machine's counters once per quantum and tracking swap totals.
class SchedulerAdapter final : public sim::QuantumPolicy {
 public:
  explicit SchedulerAdapter(Scheduler& scheduler) : scheduler_(&scheduler) {}

  [[nodiscard]] util::Tick quantumTicks() const override {
    return scheduler_->quantumTicks();
  }

  void onQuantum(sim::Machine& machine) override;

  [[nodiscard]] std::int64_t totalSwaps() const noexcept { return swaps_; }
  [[nodiscard]] std::int64_t quantaElapsed() const noexcept { return quanta_; }

  /// Attach (or detach with nullptr) a per-quantum telemetry listener.
  void setListener(QuantumListener* listener) noexcept {
    listener_ = listener;
  }
  [[nodiscard]] QuantumListener* listener() const noexcept {
    return listener_;
  }

  /// Attach (or detach with nullptr) a counter-path fault seam. Applied to
  /// every sample before the scheduler observes it.
  void setSampleFilter(SampleFilter* filter) noexcept { filter_ = filter; }
  [[nodiscard]] SampleFilter* sampleFilter() const noexcept {
    return filter_;
  }

  /// Attach (or detach with nullptr) an actuation-path fault seam. Passed
  /// into every SchedulerView this adapter constructs.
  void setActuationHook(ActuationHook* hook) noexcept { hook_ = hook; }
  [[nodiscard]] ActuationHook* actuationHook() const noexcept {
    return hook_;
  }

 private:
  Scheduler* scheduler_;
  QuantumListener* listener_ = nullptr;
  SampleFilter* filter_ = nullptr;
  ActuationHook* hook_ = nullptr;
  std::int64_t swaps_ = 0;
  std::int64_t quanta_ = 0;
  /// Capacity-reusing snapshot buffer filled by Machine::sampleAndResetInto
  /// each quantum; valid only within onQuantum.
  sim::QuantumSample sampleScratch_;
};

}  // namespace dike::sched
