#include "sched/extra_baselines.hpp"

#include <stdexcept>
#include <vector>

#include "ckpt/state_io.hpp"

namespace dike::sched {

RandomScheduler::RandomScheduler(util::Tick quantumTicks, int pairsPerQuantum,
                                 std::uint64_t seed)
    : quantum_(quantumTicks), pairs_(pairsPerQuantum), rng_(seed) {
  if (quantum_ < 1) throw std::invalid_argument{"quantum must be >= 1 tick"};
  if (pairs_ < 1) throw std::invalid_argument{"pairs must be >= 1"};
}

void RandomScheduler::onQuantum(SchedulerView& view) {
  std::vector<int> live;
  for (const sim::ThreadSample& s : view.sample().threads)
    if (!s.finished && s.coreId >= 0) live.push_back(s.threadId);
  if (live.size() < 2) return;

  for (int p = 0; p < pairs_; ++p) {
    const auto a = static_cast<std::size_t>(rng_.below(live.size()));
    auto b = static_cast<std::size_t>(rng_.below(live.size() - 1));
    if (b >= a) ++b;
    (void)view.swap(live[a], live[b]);
  }
}

void RandomScheduler::saveExtraState(ckpt::BinWriter& w) const {
  ckpt::save(w, "rng", rng_);
}

void RandomScheduler::loadExtraState(ckpt::BinReader& r) {
  ckpt::load(r, "rng", rng_);
}

}  // namespace dike::sched
