#include "sched/suspension.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/archive.hpp"
#include "util/stats.hpp"

namespace dike::sched {

SuspensionScheduler::SuspensionScheduler(util::Tick quantumTicks,
                                         double margin)
    : quantum_(quantumTicks), margin_(margin) {
  if (quantum_ < 1) throw std::invalid_argument{"quantum must be >= 1 tick"};
  if (margin_ <= 0.0) throw std::invalid_argument{"margin must be > 0"};
}

void SuspensionScheduler::onQuantum(SchedulerView& view) {
  // Accumulate progress and group live threads by process.
  std::map<int, util::OnlineStats> progressByProcess;
  std::map<int, std::vector<const sim::ThreadSample*>> threadsByProcess;
  for (const sim::ThreadSample& s : view.sample().threads) {
    if (s.finished || s.coreId < 0) continue;
    cumulativeInstructions_[s.threadId] += s.instructions;
    progressByProcess[s.processId].add(
        cumulativeInstructions_[s.threadId]);
    threadsByProcess[s.processId].push_back(&s);
  }

  for (const auto& [processId, threads] : threadsByProcess) {
    if (threads.size() < 2) continue;
    const double mean = progressByProcess[processId].mean();
    if (mean <= 0.0) continue;
    for (const sim::ThreadSample* s : threads) {
      const double lead =
          cumulativeInstructions_[s->threadId] / mean - 1.0;
      if (!view.isSuspended(s->threadId) && lead > margin_) {
        view.suspend(s->threadId);
        ++suspensions_;
      } else if (view.isSuspended(s->threadId) && lead < margin_ / 2.0) {
        view.resume(s->threadId);
      }
    }
  }
}

void SuspensionScheduler::saveExtraState(ckpt::BinWriter& w) const {
  // Sort the lookup-only map so the serialized order is deterministic.
  const std::map<int, double> sorted{cumulativeInstructions_.begin(),
                                     cumulativeInstructions_.end()};
  std::vector<std::int64_t> ids;
  std::vector<double> values;
  ids.reserve(sorted.size());
  values.reserve(sorted.size());
  for (const auto& [id, value] : sorted) {
    ids.push_back(id);
    values.push_back(value);
  }
  w.vecI64("cumulativeThreadIds", ids);
  w.vecF64("cumulativeInstructions", values);
  w.i64("suspensions", suspensions_);
}

void SuspensionScheduler::loadExtraState(ckpt::BinReader& r) {
  const std::vector<std::int64_t> ids = r.vecI64("cumulativeThreadIds");
  const std::vector<double> values = r.vecF64("cumulativeInstructions");
  if (ids.size() != values.size())
    throw ckpt::CheckpointError{
        "suspension scheduler checkpoint has " + std::to_string(ids.size()) +
        " thread ids but " + std::to_string(values.size()) + " values"};
  const std::int64_t suspensions = r.i64("suspensions");
  cumulativeInstructions_.clear();
  for (std::size_t i = 0; i < ids.size(); ++i)
    cumulativeInstructions_[static_cast<int>(ids[i])] = values[i];
  suspensions_ = suspensions;
}

}  // namespace dike::sched
