#include "sched/suspension.hpp"

#include <map>
#include <stdexcept>

#include "util/stats.hpp"

namespace dike::sched {

SuspensionScheduler::SuspensionScheduler(util::Tick quantumTicks,
                                         double margin)
    : quantum_(quantumTicks), margin_(margin) {
  if (quantum_ < 1) throw std::invalid_argument{"quantum must be >= 1 tick"};
  if (margin_ <= 0.0) throw std::invalid_argument{"margin must be > 0"};
}

void SuspensionScheduler::onQuantum(SchedulerView& view) {
  // Accumulate progress and group live threads by process.
  std::map<int, util::OnlineStats> progressByProcess;
  std::map<int, std::vector<const sim::ThreadSample*>> threadsByProcess;
  for (const sim::ThreadSample& s : view.sample().threads) {
    if (s.finished || s.coreId < 0) continue;
    cumulativeInstructions_[s.threadId] += s.instructions;
    progressByProcess[s.processId].add(
        cumulativeInstructions_[s.threadId]);
    threadsByProcess[s.processId].push_back(&s);
  }

  for (const auto& [processId, threads] : threadsByProcess) {
    if (threads.size() < 2) continue;
    const double mean = progressByProcess[processId].mean();
    if (mean <= 0.0) continue;
    for (const sim::ThreadSample* s : threads) {
      const double lead =
          cumulativeInstructions_[s->threadId] / mean - 1.0;
      if (!view.isSuspended(s->threadId) && lead > margin_) {
        view.suspend(s->threadId);
        ++suspensions_;
      } else if (view.isSuspended(s->threadId) && lead < margin_ / 2.0) {
        view.resume(s->threadId);
      }
    }
  }
}

}  // namespace dike::sched
