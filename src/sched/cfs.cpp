#include "sched/cfs.hpp"

#include <stdexcept>

namespace dike::sched {

CfsScheduler::CfsScheduler(util::Tick quantumTicks) : quantum_(quantumTicks) {
  if (quantum_ < 1) throw std::invalid_argument{"quantum must be >= 1 tick"};
}

void CfsScheduler::onQuantum(SchedulerView& view) {
  // With a full one-thread-per-core assignment there is nothing for CFS's
  // load balancer to move: every runqueue has exactly one task. The sample
  // is intentionally ignored — CFS is contention-oblivious.
  (void)view;
}

}  // namespace dike::sched
