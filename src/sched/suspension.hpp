// Suspension-based progress equalisation — the enforcement mechanism the
// paper's Migrator section (III-E) argues against: "although suspending
// threads does not produce context switch overhead, it slows down
// performance significantly as fast threads are idle waiting for the
// slowest threads to catch up". Implemented so that claim can be measured
// rather than assumed (see bench_ablation's policy ladder).
//
// Policy: each quantum, suspend any thread whose cumulative retired
// instructions lead its process mean by more than `margin`; resume once it
// falls back under half the margin (hysteresis avoids flapping). No thread
// ever migrates.
#pragma once

#include <unordered_map>

#include "sched/scheduler.hpp"

namespace dike::sched {

class SuspensionScheduler final : public Scheduler {
 public:
  explicit SuspensionScheduler(util::Tick quantumTicks = 500,
                               double margin = 0.05);

  [[nodiscard]] std::string_view name() const override { return "suspend"; }
  [[nodiscard]] util::Tick quantumTicks() const override { return quantum_; }
  void onQuantum(SchedulerView& view) override;

  [[nodiscard]] std::int64_t suspensionsIssued() const noexcept {
    return suspensions_;
  }

 protected:
  void saveExtraState(ckpt::BinWriter& w) const override;
  void loadExtraState(ckpt::BinReader& r) override;

 private:
  util::Tick quantum_;
  double margin_;
  std::unordered_map<int, double> cumulativeInstructions_;
  std::int64_t suspensions_ = 0;
};

}  // namespace dike::sched
