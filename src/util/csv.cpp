#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace dike::util {

std::string csvEscape(std::string_view field) {
  const bool needsQuote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needsQuote) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  bool first = true;
  for (auto n : names) {
    writeField(n, first);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& names) {
  bool first = true;
  for (const auto& n : names) {
    writeField(std::string_view{n}, first);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::writeField(std::string_view v, bool first) {
  if (!first) *out_ << ',';
  *out_ << csvEscape(v);
}

void CsvWriter::writeField(double v, bool first) {
  if (!first) *out_ << ',';
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out_ << buf;
}

void CsvWriter::writeField(int v, bool first) {
  if (!first) *out_ << ',';
  *out_ << v;
}

void CsvWriter::writeField(long v, bool first) {
  if (!first) *out_ << ',';
  *out_ << v;
}

void CsvWriter::writeField(long long v, bool first) {
  if (!first) *out_ << ',';
  *out_ << v;
}

void CsvWriter::writeField(unsigned long v, bool first) {
  if (!first) *out_ << ',';
  *out_ << v;
}

void CsvWriter::writeField(unsigned long long v, bool first) {
  if (!first) *out_ << ',';
  *out_ << v;
}

std::vector<std::string> parseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && current.empty()) {
      quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (quoted)
    throw std::runtime_error{"unterminated quoted CSV field: " +
                             std::string{line}};
  fields.push_back(std::move(current));
  return fields;
}

CsvFile::CsvFile(const std::string& path) : file_(path), writer_(file_) {
  if (!file_) throw std::runtime_error{"cannot open CSV file: " + path};
}

}  // namespace dike::util
