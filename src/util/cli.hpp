// A tiny --flag=value / --flag value argument parser for examples and
// bench binaries. Not a general-purpose CLI library; just enough to keep the
// executables dependency-free and consistent.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dike::util {

/// Parses `--name=value`, `--name value`, and bare `--name` boolean flags.
/// Positional (non-flag) arguments are collected in order.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  [[nodiscard]] std::string getOr(std::string_view name,
                                  std::string_view fallback) const;
  // The typed getters return the fallback when the flag is absent, and
  // throw std::runtime_error naming the flag when it is present but
  // malformed ("--seed 12x") — a typo must never silently become 0.
  [[nodiscard]] int getInt(std::string_view name, int fallback) const;
  [[nodiscard]] std::int64_t getInt64(std::string_view name,
                                      std::int64_t fallback) const;
  [[nodiscard]] double getDouble(std::string_view name, double fallback) const;
  [[nodiscard]] bool getBool(std::string_view name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& programName() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dike::util
