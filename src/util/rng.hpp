// Deterministic, seedable random number generation.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so we avoid std::mt19937 distribution implementations (which differ across
// standard libraries for some distributions) and ship a small xoshiro256**
// generator with hand-rolled uniform/normal helpers.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace dike::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x3243F6A8885A308DULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Standard normal via Box-Muller (deterministic given seed).
  [[nodiscard]] double normal() noexcept {
    if (haveSpare_) {
      haveSpare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mu, double sigma) noexcept {
    return mu + sigma * normal();
  }

  /// Multiplicative noise factor: 1 + N(0, sigma), clamped to stay positive.
  [[nodiscard]] double noiseFactor(double sigma) noexcept {
    if (sigma <= 0.0) return 1.0;
    const double f = 1.0 + normal(0.0, sigma);
    return f < 0.05 ? 0.05 : f;
  }

  /// Derive an independent child generator (e.g., one per thread).
  [[nodiscard]] Rng fork() noexcept { return Rng{(*this)()}; }

  /// Complete generator state, exposed so checkpoints can capture and
  /// restore the stream position exactly (including the Box-Muller spare,
  /// without which a restored run would consume draws in a different order).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double spare = 0.0;
    bool haveSpare = false;
  };
  [[nodiscard]] State state() const noexcept {
    return State{s_, spare_, haveSpare_};
  }
  void setState(const State& state) noexcept {
    s_ = state.s;
    spare_ = state.spare;
    haveSpare_ = state.haveSpare;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool haveSpare_ = false;
};

}  // namespace dike::util
