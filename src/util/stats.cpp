#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dike::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::coefficientOfVariation() const noexcept {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / std::abs(m);
}

double mean(std::span<const double> xs) noexcept {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) noexcept {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double coefficientOfVariation(std::span<const double> xs) noexcept {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.coefficientOfVariation();
}

double geometricMean(std::span<const double> xs) noexcept {
  double logSum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      logSum += std::log(x);
      ++n;
    }
  }
  if (n == 0) return 0.0;
  return std::exp(logSum / static_cast<double>(n));
}

double minOf(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double maxOf(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

MovingMean::MovingMean(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument{"MovingMean window must be > 0"};
}

void MovingMean::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  if (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
}

void MovingMean::reset() noexcept {
  samples_.clear();
  sum_ = 0.0;
}

void MovingMean::restore(std::span<const double> samples, double sum) {
  if (samples.size() > window_)
    throw std::invalid_argument{
        "MovingMean::restore: more samples than the window holds"};
  samples_.assign(samples.begin(), samples.end());
  sum_ = sum;
}

double MovingMean::value() const noexcept {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double MovingMean::last() const noexcept {
  return samples_.empty() ? 0.0 : samples_.back();
}

EwmaMean::EwmaMean(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0)
    throw std::invalid_argument{"EwmaMean alpha must be in (0, 1]"};
}

void EwmaMean::add(double x) noexcept {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

Summary summarize(std::span<const double> xs) noexcept {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return Summary{s.count(), s.mean(), s.stddev(), s.min(), s.max()};
}

}  // namespace dike::util
