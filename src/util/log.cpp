#include "util/log.hpp"

#include <iostream>
#include <mutex>

namespace dike::util {

namespace {
std::mutex& sinkMutex() {
  static std::mutex mu;
  return mu;
}

std::string& threadTagStorage() {
  thread_local std::string tag;
  return tag;
}
}  // namespace

std::atomic<LogLevel> Log::level_{LogLevel::Warn};

void Log::setLevel(LogLevel level) noexcept {
  level_.store(level, std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return level_.load(std::memory_order_relaxed);
}

bool Log::enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         static_cast<int>(level_.load(std::memory_order_relaxed));
}

void Log::setThreadTag(std::string tag) {
  threadTagStorage() = std::move(tag);
}

const std::string& Log::threadTag() noexcept { return threadTagStorage(); }

void Log::write(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  const char* tag = "";
  switch (level) {
    case LogLevel::Debug: tag = "DEBUG"; break;
    case LogLevel::Info: tag = "INFO "; break;
    case LogLevel::Warn: tag = "WARN "; break;
    case LogLevel::Error: tag = "ERROR"; break;
    case LogLevel::Off: return;
  }
  // Compose the full line off-lock, then write it in one guarded statement
  // so concurrent writers cannot interleave fragments.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += tag;
  line += "] ";
  const std::string& threadTag = threadTagStorage();
  if (!threadTag.empty()) {
    line += '[';
    line += threadTag;
    line += "] ";
  }
  line += message;
  line += '\n';
  const std::lock_guard lock{sinkMutex()};
  std::clog << line;
}

}  // namespace dike::util
