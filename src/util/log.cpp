#include "util/log.hpp"

#include <iostream>

namespace dike::util {

LogLevel Log::level_ = LogLevel::Warn;

void Log::setLevel(LogLevel level) noexcept { level_ = level; }

LogLevel Log::level() noexcept { return level_; }

bool Log::enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(level_);
}

void Log::write(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  const char* tag = "";
  switch (level) {
    case LogLevel::Debug: tag = "DEBUG"; break;
    case LogLevel::Info: tag = "INFO "; break;
    case LogLevel::Warn: tag = "WARN "; break;
    case LogLevel::Error: tag = "ERROR"; break;
    case LogLevel::Off: return;
  }
  std::clog << '[' << tag << "] " << message << '\n';
}

}  // namespace dike::util
