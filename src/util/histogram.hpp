// Fixed-range histograms and exact percentiles for result analysis.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dike::util {

/// Exact percentile: linear interpolation between order statistics at
/// rank p/100 * (n-1). Throws std::invalid_argument when p is outside
/// [0, 100] or NaN (even for empty input); returns 0 for empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Equal-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  void addAll(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bucketCount() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t countAt(std::size_t bucket) const {
    return counts_.at(bucket);
  }
  [[nodiscard]] double bucketLow(std::size_t bucket) const;
  [[nodiscard]] double bucketHigh(std::size_t bucket) const;

  /// Render as compact ASCII bars, one row per bucket:
  ///   [-0.10, -0.05)  ####      12
  /// Empty leading/trailing buckets are skipped.
  [[nodiscard]] std::string render(int barWidth = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dike::util
