// Leveled logging. Off by default so simulation hot paths stay quiet;
// examples and the Linux host enable Info or Debug.
//
// Thread-safe: the level is a single atomic read, and each line is
// composed off-lock then written under a mutex, so concurrent writers
// (e.g. the exp::parallel sweep pool) cannot interleave half-lines. A
// per-thread tag (Log::setThreadTag) prefixes lines so pool workers are
// attributable.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace dike::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global log configuration.
class Log {
 public:
  static void setLevel(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;
  [[nodiscard]] static bool enabled(LogLevel level) noexcept;

  /// Emit one line at the given level (no-op if below the global level).
  /// The whole line — tag, prefix, message, newline — is written atomically
  /// with respect to other Log::write calls.
  static void write(LogLevel level, std::string_view message);

  /// Tag prepended to this thread's lines, e.g. "w3" for sweep-pool worker
  /// 3. Empty (the default) adds no prefix.
  static void setThreadTag(std::string tag);
  [[nodiscard]] static const std::string& threadTag() noexcept;

 private:
  static std::atomic<LogLevel> level_;
};

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void logDebug(const Args&... args) {
  if (Log::enabled(LogLevel::Debug))
    Log::write(LogLevel::Debug, detail::concat(args...));
}

template <typename... Args>
void logInfo(const Args&... args) {
  if (Log::enabled(LogLevel::Info))
    Log::write(LogLevel::Info, detail::concat(args...));
}

template <typename... Args>
void logWarn(const Args&... args) {
  if (Log::enabled(LogLevel::Warn))
    Log::write(LogLevel::Warn, detail::concat(args...));
}

template <typename... Args>
void logError(const Args&... args) {
  if (Log::enabled(LogLevel::Error))
    Log::write(LogLevel::Error, detail::concat(args...));
}

}  // namespace dike::util
