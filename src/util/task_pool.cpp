#include "util/task_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "util/log.hpp"

namespace dike::util {

int defaultJobs() {
  if (const char* env = std::getenv("DIKE_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<int>(std::min<long>(v, 1024));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

TaskPool::TaskPool(int jobs) {
  jobCount_ = jobs > 0 ? jobs : defaultJobs();
  workers_.reserve(static_cast<std::size_t>(jobCount_));
  for (int i = 0; i < jobCount_; ++i)
    workers_.emplace_back([this, i](const std::stop_token& stop) {
      // Tag the worker's log lines so interleaved output is attributable.
      util::Log::setThreadTag("w" + std::to_string(i));
      workerLoop(stop);
    });
}

TaskPool::~TaskPool() {
  for (std::jthread& w : workers_) w.request_stop();
  // condition_variable_any's stop_token wait self-wakes on request_stop;
  // std::jthread joins on destruction and workers drain the queue first.
}

void TaskPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock{mu_};
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  taskReady_.notify_one();
}

void TaskPool::waitIdle() {
  std::unique_lock lock{mu_};
  idle_.wait(lock, [this] { return unfinished_ == 0; });
}

void TaskPool::workerLoop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mu_};
      // Returns false only when stop was requested AND the queue is empty:
      // a stopping pool still drains every task that was submitted.
      if (!taskReady_.wait(lock, stop, [this] { return !queue_.empty(); }))
        return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard lock{mu_};
      --unfinished_;
      if (unfinished_ == 0) idle_.notify_all();
    }
  }
}

void TaskPool::runBatch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    try {
      (*batch.fn)(i);
    } catch (...) {
      batch.errors[i] = std::current_exception();
    }
    {
      const std::lock_guard lock{batch.mu};
      // The lock pairs each errors[i] write with the caller's post-wait
      // read: the caller only reads the array after observing done == count
      // under the same mutex.
      if (++batch.done == batch.count) batch.doneCv.notify_all();
    }
  }
}

void TaskPool::forEach(std::size_t count,
                       const std::function<void(std::size_t)>& fn,
                       int parallelism) {
  if (count == 0) return;
  int par = parallelism > 0 ? parallelism : jobCount_;
  par = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(par), count));
  if (par <= 1) {
    // Inline fast path: no queueing, and exceptions propagate from the
    // faulting index immediately (serial semantics).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const auto batch = std::make_shared<Batch>(count, &fn);
  // Caller-runs: the calling thread claims indices like any helper, so the
  // batch finishes even when every pool worker is busy (or when the caller
  // IS a pool worker — nested forEach). Helpers beyond the pool width would
  // only ever queue behind each other, so cap at jobs().
  const int helpers = std::min(par - 1, jobCount_);
  for (int h = 0; h < helpers; ++h)
    submit([batch] { runBatch(*batch); });
  runBatch(*batch);
  {
    std::unique_lock lock{batch->mu};
    batch->doneCv.wait(lock, [&] { return batch->done == batch->count; });
  }
  for (const std::exception_ptr& e : batch->errors)
    if (e) std::rethrow_exception(e);
}

TaskPool& TaskPool::shared() {
  static TaskPool pool{defaultJobs()};
  return pool;
}

}  // namespace dike::util
