// Minimal CSV emission for experiment artefacts (figure series, sweeps).
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dike::util {

/// Streams rows of comma-separated values with correct quoting.
///
/// Usage:
///   CsvWriter csv{out};
///   csv.header({"workload", "fairness"});
///   csv.row("wl1", 0.92);
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(std::initializer_list<std::string_view> names);
  void header(const std::vector<std::string>& names);

  template <typename... Fields>
  void row(const Fields&... fields) {
    bool first = true;
    ((writeField(fields, first), first = false), ...);
    *out_ << '\n';
  }

  [[nodiscard]] std::ostream& stream() noexcept { return *out_; }

 private:
  void writeField(std::string_view v, bool first);
  void writeField(const std::string& v, bool first) {
    writeField(std::string_view{v}, first);
  }
  void writeField(const char* v, bool first) {
    writeField(std::string_view{v}, first);
  }
  void writeField(double v, bool first);
  void writeField(int v, bool first);
  void writeField(long v, bool first);
  void writeField(long long v, bool first);
  void writeField(unsigned long v, bool first);
  void writeField(unsigned long long v, bool first);

  std::ostream* out_;
};

/// Convenience: open a file-backed CSV writer; throws on failure.
class CsvFile {
 public:
  explicit CsvFile(const std::string& path);

  [[nodiscard]] CsvWriter& writer() noexcept { return writer_; }

 private:
  std::ofstream file_;
  CsvWriter writer_;
};

/// Escape a single CSV field per RFC 4180 (quote when needed).
[[nodiscard]] std::string csvEscape(std::string_view field);

/// Split one CSV line into fields, honouring RFC 4180 quoting ("" inside a
/// quoted field is a literal quote). The line must not contain the record
/// terminator; embedded newlines inside quoted fields are not supported
/// (none of our writers emit them). Throws std::runtime_error on an
/// unterminated quoted field.
[[nodiscard]] std::vector<std::string> parseCsvLine(std::string_view line);

}  // namespace dike::util
