// Shared worker pool for every parallel subsystem in the tree.
//
// Promoted from the sweep-only pool in exp/parallel: the experiment fan-out
// and the clustered scheduler's intra-quantum plan phase now draw from one
// process-wide jobs budget (TaskPool::shared(), sized by DIKE_JOBS), so
// nesting the two never oversubscribes the machine.
//
// forEach() is the structured entry point and is safe to call from inside a
// pool task: the caller claims indices itself (caller-runs), so a sweep
// worker that fans out a nested decide phase always makes progress even
// when every other worker is busy — no thread ever blocks waiting for a
// queue slot it is itself occupying.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

namespace dike::util {

/// Worker count used when a caller passes jobs <= 0: the DIKE_JOBS
/// environment variable when set to a positive integer (capped at 1024),
/// otherwise std::thread::hardware_concurrency() (at least 1). DIKE_JOBS is
/// the single parallelism knob: sweeps, the clustered decide phase, and the
/// shared pool below all derive their budget from it.
[[nodiscard]] int defaultJobs();

/// A fixed-size worker pool over a FIFO work queue.
///
/// Tasks passed to submit() must not throw (workers have no handler);
/// forEach() wraps user callables and captures their exceptions. Workers
/// are std::jthreads parked on a stop_token-aware wait: destruction
/// requests stop, wakes everyone, and drains the queue before joining, so
/// no submitted task is ever dropped.
class TaskPool {
 public:
  explicit TaskPool(int jobs = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue one fire-and-forget task. Must not throw.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running.
  void waitIdle();

  [[nodiscard]] int jobs() const noexcept { return jobCount_; }

  /// Run fn(0..count-1), spreading indices across up to `parallelism`
  /// threads (<= 0 uses the pool width; 1 runs inline on the calling
  /// thread, propagating exceptions immediately). Blocks until every index
  /// has run. If any invocation throws, the first exception in index order
  /// is rethrown after the batch drains. Reentrant: fn may itself call
  /// forEach on the same pool.
  void forEach(std::size_t count, const std::function<void(std::size_t)>& fn,
               int parallelism = 0);

  /// The process-wide pool, created on first use with defaultJobs()
  /// workers. This is the instance every subsystem should share so one
  /// DIKE_JOBS budget bounds total parallelism.
  [[nodiscard]] static TaskPool& shared();

 private:
  /// One forEach invocation: helpers and the caller race on `next` to claim
  /// indices; the last finisher signals `done_cv`. Heap-allocated and
  /// shared_ptr-held so a helper task that starts after the batch completed
  /// (queue backlog) can still observe next >= count and retire safely.
  struct Batch {
    explicit Batch(std::size_t n,
                   const std::function<void(std::size_t)>* f)
        : count(n), fn(f), errors(n) {}
    const std::size_t count;
    /// Owned by the forEach caller's frame; never dereferenced after the
    /// batch completes (no index can be claimed once next >= count).
    const std::function<void(std::size_t)>* fn;
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable doneCv;
    std::size_t done = 0;  // guarded by mu
    std::vector<std::exception_ptr> errors;
  };

  void workerLoop(const std::stop_token& stop);
  static void runBatch(Batch& batch);

  std::mutex mu_;
  std::condition_variable_any taskReady_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t unfinished_ = 0;  // queued + running
  int jobCount_ = 0;
  std::vector<std::jthread> workers_;
};

}  // namespace dike::util
