#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace dike::util {

bool JsonValue::asBool() const {
  if (!isBool()) throw std::runtime_error{"JSON value is not a bool"};
  return std::get<bool>(value_);
}

double JsonValue::asNumber() const {
  if (!isNumber()) throw std::runtime_error{"JSON value is not a number"};
  return std::get<double>(value_);
}

const std::string& JsonValue::asString() const {
  if (!isString()) throw std::runtime_error{"JSON value is not a string"};
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::asArray() const {
  if (!isArray()) throw std::runtime_error{"JSON value is not an array"};
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::asObject() const {
  if (!isObject()) throw std::runtime_error{"JSON value is not an object"};
  return std::get<JsonObject>(value_);
}

std::optional<JsonValue> JsonValue::get(std::string_view key) const {
  if (!isObject()) return std::nullopt;
  const JsonObject& obj = std::get<JsonObject>(value_);
  const auto it = obj.find(key);
  if (it == obj.end()) return std::nullopt;
  return it->second;
}

double JsonValue::numberOr(std::string_view key, double fallback) const {
  const auto v = get(key);
  return v && v->isNumber() ? v->asNumber() : fallback;
}

int JsonValue::intOr(std::string_view key, int fallback) const {
  const auto v = get(key);
  return v && v->isNumber() ? static_cast<int>(v->asNumber()) : fallback;
}

bool JsonValue::boolOr(std::string_view key, bool fallback) const {
  const auto v = get(key);
  return v && v->isBool() ? v->asBool() : fallback;
}

std::string JsonValue::stringOr(std::string_view key,
                                std::string_view fallback) const {
  const auto v = get(key);
  return v && v->isString() ? v->asString() : std::string{fallback};
}

namespace {

void escapeInto(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Print through unsigned char: char is signed here, so a negative
        // byte passed to %04x would sign-extend into an 8-digit escape.
        // Bytes >= 0x20 (including non-ASCII UTF-8 bytes) pass through
        // verbatim; the parser accepts them verbatim too, so dump -> parse
        // round-trips any byte content.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dumpNumber(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void dumpValue(std::string& out, const JsonValue& value, int indent,
               int depth);

void newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dumpValue(std::string& out, const JsonValue& value, int indent,
               int depth) {
  if (value.isNull()) {
    out += "null";
  } else if (value.isBool()) {
    out += value.asBool() ? "true" : "false";
  } else if (value.isNumber()) {
    dumpNumber(out, value.asNumber());
  } else if (value.isString()) {
    escapeInto(out, value.asString());
  } else if (value.isArray()) {
    const JsonArray& array = value.asArray();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const JsonValue& item : array) {
      if (!first) out.push_back(',');
      first = false;
      newline(out, indent, depth + 1);
      dumpValue(out, item, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push_back(']');
  } else {
    const JsonObject& object = value.asObject();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : object) {
      if (!first) out.push_back(',');
      first = false;
      newline(out, indent, depth + 1);
      escapeInto(out, key);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      dumpValue(out, item, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push_back('}');
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    skipWhitespace();
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError{pos_, message};
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string{"expected '"} + c + "'");
    }
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue{parseString()};
      case 't':
        if (!consumeLiteral("true")) fail("invalid literal");
        return JsonValue{true};
      case 'f':
        if (!consumeLiteral("false")) fail("invalid literal");
        return JsonValue{false};
      case 'n':
        if (!consumeLiteral("null")) fail("invalid literal");
        return JsonValue{nullptr};
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonObject object;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(object)};
    }
    for (;;) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      skipWhitespace();
      object.insert_or_assign(std::move(key), parseValue());
      skipWhitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue{std::move(object)};
  }

  JsonValue parseArray() {
    expect('[');
    JsonArray array;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(array)};
    }
    for (;;) {
      skipWhitespace();
      array.push_back(parseValue());
      skipWhitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue{std::move(array)};
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendUnicodeEscape(out); break;
        default: --pos_; fail("invalid escape sequence");
      }
    }
  }

  void appendUnicodeEscape(std::string& out) {
    const unsigned code = parseHex4();
    // Encode the BMP code point as UTF-8 (surrogate pairs are rare in
    // config files; a lone surrogate is rejected).
    if (code >= 0xD800 && code <= 0xDFFF) {
      if (code >= 0xDC00) fail("unexpected low surrogate");
      if (take() != '\\' || take() != 'u') fail("expected low surrogate");
      const unsigned low = parseHex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      const unsigned cp =
          0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      return;
    }
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parseHex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (digits() == 0) {
      pos_ = start;
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    double value = 0.0;
    const auto result = std::from_chars(text_.data() + start,
                                        text_.data() + pos_, value);
    if (result.ec != std::errc{}) fail("number out of range");
    return JsonValue{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpValue(out, *this, indent, 0);
  return out;
}

JsonParseError::JsonParseError(std::size_t offset, const std::string& message)
    : std::runtime_error{"JSON parse error at offset " +
                         std::to_string(offset) + ": " + message},
      offset_(offset) {}

JsonValue parseJson(std::string_view text) {
  return Parser{text}.parseDocument();
}

JsonValue parseJsonFile(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open JSON file: " + path};
  const std::string content{std::istreambuf_iterator<char>{in},
                            std::istreambuf_iterator<char>{}};
  return parseJson(content);
}

}  // namespace dike::util
