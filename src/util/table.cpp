#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace dike::util {

std::string formatFixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return std::string{buf};
}

std::string formatSignedPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return std::string{buf};
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (!aligns_.empty()) aligns_.front() = Align::Left;
}

void TextTable::setAlign(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

TextTable& TextTable::newRow() {
  Row row;
  row.separatorBefore = pendingSeparator_;
  pendingSeparator_ = false;
  rows_.push_back(std::move(row));
  return *this;
}

TextTable& TextTable::cell(std::string_view text) {
  if (rows_.empty()) newRow();
  rows_.back().cells.emplace_back(text);
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(formatFixed(value, precision));
}

TextTable& TextTable::cellPercent(double fraction, int precision) {
  return cell(formatSignedPercent(fraction, precision));
}

TextTable& TextTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::separator() {
  pendingSeparator_ = true;
  return *this;
}

std::string TextTable::render() const {
  const std::size_t cols = headers_.size();
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size() && c < cols; ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto renderLine = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = widths[c] - std::min(widths[c], text.size());
      if (c > 0) line += "  ";
      if (aligns_[c] == Align::Right) line.append(pad, ' ');
      line += text;
      if (aligns_[c] == Align::Left && c + 1 < cols) line.append(pad, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::size_t totalWidth = cols >= 1 ? 2 * (cols - 1) : 0;
  for (auto w : widths) totalWidth += w;
  const std::string rule(totalWidth, '-');

  std::string out = renderLine(headers_);
  out += rule;
  out += '\n';
  for (const auto& row : rows_) {
    if (row.separatorBefore) {
      out += rule;
      out += '\n';
    }
    out += renderLine(row.cells);
  }
  return out;
}

void TextTable::print() const { std::cout << render() << std::flush; }

}  // namespace dike::util
