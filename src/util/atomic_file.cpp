#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace dike::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error{what + ": " + path + " (" + std::strerror(errno) +
                           ")"};
}

int openRetry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

void writeAll(int fd, const char* data, std::size_t size,
              const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("failed writing", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsyncRetry(int fd, const std::string& path) {
  while (::fsync(fd) != 0)
    if (errno != EINTR) fail("fsync failed for", path);
}

void closeRetry(int fd) {
  // POSIX leaves the fd state unspecified after EINTR from close; Linux
  // always releases it, so retrying would race a reuse. Close once.
  ::close(fd);
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems refuse O_DIRECTORY fsync; the rename is
/// still atomic, just not yet journalled.
void fsyncParentDir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string{"."}
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = openRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  closeRetry(fd);
}

}  // namespace

void writeFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      openRetry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("cannot open for writing", tmp);
  try {
    writeAll(fd, bytes.data(), bytes.size(), tmp);
    fsyncRetry(fd, tmp);
  } catch (...) {
    closeRetry(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  closeRetry(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot move into place", path);
  }
  fsyncParentDir(path);
}

AppendFile::AppendFile(const std::string& path, bool truncate) : path_(path) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  fd_ = openRetry(path.c_str(), flags, 0644);
  if (fd_ < 0) fail("cannot open for append", path);
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) closeRetry(fd_);
}

void AppendFile::append(std::string_view bytes) {
  writeAll(fd_, bytes.data(), bytes.size(), path_);
}

void AppendFile::flushSync() { fsyncRetry(fd_, path_); }

std::int64_t trimFileToLines(const std::string& path, std::int64_t lines) {
  const int fd = openRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT && lines == 0) return 0;
    fail("cannot open for trimming", path);
  }
  std::string content;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      closeRetry(fd);
      fail("failed reading", path);
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  closeRetry(fd);

  std::size_t keep = 0;
  std::int64_t seen = 0;
  while (seen < lines) {
    const auto nl = content.find('\n', keep);
    if (nl == std::string::npos) break;
    keep = nl + 1;
    ++seen;
  }
  if (seen < lines)
    throw std::runtime_error{"cannot trim " + path + " to " +
                             std::to_string(lines) + " lines: only " +
                             std::to_string(seen) + " complete lines exist"};
  // Count what we are about to drop: complete lines past the cut plus a
  // possible torn tail.
  std::int64_t dropped = 0;
  for (std::size_t at = keep;;) {
    const auto nl = content.find('\n', at);
    if (nl == std::string::npos) {
      if (at < content.size()) ++dropped;  // torn tail
      break;
    }
    ++dropped;
    at = nl + 1;
  }
  if (dropped == 0) return 0;
  writeFileAtomic(path, std::string_view{content}.substr(0, keep));
  return dropped;
}

}  // namespace dike::util
