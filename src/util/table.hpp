// Aligned plain-text tables for the benchmark harness reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dike::util {

/// Column alignment in rendered tables.
enum class Align { Left, Right };

/// Collects rows of string cells and renders an aligned ASCII table.
///
/// Numeric convenience overloads format with a fixed precision; the caller
/// controls precision per-cell via `cell(double, precision)`.
class TextTable {
 public:
  /// Begin a table with the given column headers (all right-aligned by
  /// default except the first column, which is left-aligned).
  explicit TextTable(std::vector<std::string> headers);

  /// Override the alignment for a specific column.
  void setAlign(std::size_t column, Align align);

  /// Start a new row. Subsequent `cell` calls fill it left to right.
  TextTable& newRow();
  TextTable& cell(std::string_view text);
  TextTable& cell(double value, int precision = 3);
  TextTable& cellPercent(double fraction, int precision = 1);
  TextTable& cell(std::int64_t value);
  TextTable& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

  /// Insert a horizontal separator before the next row.
  TextTable& separator();

  /// Render the complete table.
  [[nodiscard]] std::string render() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columnCount() const noexcept {
    return headers_.size();
  }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separatorBefore = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pendingSeparator_ = false;
};

/// Format a double with fixed precision (helper shared with reports).
[[nodiscard]] std::string formatFixed(double value, int precision);
/// Format a fraction as a signed percentage, e.g. 0.38 -> "+38.0%".
[[nodiscard]] std::string formatSignedPercent(double fraction, int precision = 1);

}  // namespace dike::util
