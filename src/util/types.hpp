// Common scalar types and conversion helpers shared across all Dike modules.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace dike::util {

/// Simulated time in integral ticks. One tick is `kTickSeconds` of simulated
/// wall-clock time; all scheduling quanta are whole numbers of ticks.
using Tick = std::int64_t;

/// Duration of one simulator tick in seconds (1 ms).
inline constexpr double kTickSeconds = 1e-3;

/// Milliseconds per tick (the simulator's native resolution).
inline constexpr std::int64_t kTickMillis = 1;

[[nodiscard]] constexpr Tick millisToTicks(std::int64_t ms) noexcept {
  return ms / kTickMillis;
}

[[nodiscard]] constexpr double ticksToSeconds(Tick t) noexcept {
  return static_cast<double>(t) * kTickSeconds;
}

/// Checked narrowing cast: asserts the value is representable in To.
template <typename To, typename From>
[[nodiscard]] constexpr To narrow(From v) noexcept {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To out = static_cast<To>(v);
  assert(static_cast<From>(out) == v && "narrowing cast lost information");
  return out;
}

/// Size of a container as a plain int (indices in this codebase are ints).
template <typename Container>
[[nodiscard]] constexpr int isize(const Container& c) noexcept {
  return static_cast<int>(c.size());
}

}  // namespace dike::util
