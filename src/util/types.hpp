// Common scalar types and conversion helpers shared across all Dike modules.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>

namespace dike::util {

/// Simulated time in integral ticks. One tick is `kTickSeconds` of simulated
/// wall-clock time; all scheduling quanta are whole numbers of ticks.
using Tick = std::int64_t;

/// Duration of one simulator tick in seconds (1 ms).
inline constexpr double kTickSeconds = 1e-3;

/// Milliseconds per tick (the simulator's native resolution).
inline constexpr std::int64_t kTickMillis = 1;

[[nodiscard]] constexpr Tick millisToTicks(std::int64_t ms) noexcept {
  return ms / kTickMillis;
}

[[nodiscard]] constexpr double ticksToSeconds(Tick t) noexcept {
  return static_cast<double>(t) * kTickSeconds;
}

/// Checked narrowing cast: asserts the value is representable in To.
template <typename To, typename From>
[[nodiscard]] constexpr To narrow(From v) noexcept {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To out = static_cast<To>(v);
  assert(static_cast<From>(out) == v && "narrowing cast lost information");
  return out;
}

/// Size of a container as a plain int (indices in this codebase are ints).
/// Checked: containers on scaled paths can exceed INT_MAX elements only
/// through a bug, so this asserts rather than silently wrapping.
template <typename Container>
[[nodiscard]] constexpr int isize(const Container& c) noexcept {
  return narrow<int>(c.size());
}

/// Checked narrowing to int that *throws* instead of asserting. Use on
/// untrusted inputs (checkpoint restore, parsed configs) where an
/// out-of-range value must surface as a typed error, not a wrapped counter.
/// The exception type is a template parameter so call sites can raise their
/// module's own error (e.g. ckpt::CheckpointError) with a contextual message.
template <typename E, typename From>
[[nodiscard]] int checkedInt(From v, const char* what) {
  static_assert(std::is_integral_v<From>);
  if (std::cmp_less(v, std::numeric_limits<int>::min()) ||
      std::cmp_greater(v, std::numeric_limits<int>::max()))
    throw E{std::string{what} + " is out of int range (" +
            std::to_string(static_cast<long long>(v)) + ")"};
  return static_cast<int>(v);
}

}  // namespace dike::util
