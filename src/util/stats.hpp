// Online and batch statistics used by the observer, metrics, and reports.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace dike::util {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;
  void reset() noexcept { *this = OnlineStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n). Zero for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation: stddev / |mean|. Zero when the mean is zero.
  [[nodiscard]] double coefficientOfVariation() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Raw accumulator state for checkpointing. The mean/m2 values are path
  /// dependent (Welford updates do not commute bit-exactly), so restoring a
  /// run must restore them verbatim rather than re-accumulating.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] State state() const noexcept {
    return State{n_, mean_, m2_, min_, max_};
  }
  void setState(const State& s) noexcept {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a span of samples.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
/// stddev/mean; zero for empty spans or zero mean.
[[nodiscard]] double coefficientOfVariation(std::span<const double> xs) noexcept;
/// Geometric mean; ignores non-positive entries (returns 0 if none positive).
[[nodiscard]] double geometricMean(std::span<const double> xs) noexcept;
[[nodiscard]] double minOf(std::span<const double> xs) noexcept;
[[nodiscard]] double maxOf(std::span<const double> xs) noexcept;

/// Fixed-capacity sliding-window mean. Used for the per-core CoreBW moving
/// mean the paper's Observer maintains (Section III-A).
class MovingMean {
 public:
  explicit MovingMean(std::size_t window);

  void add(double x);
  void reset() noexcept;

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  /// Mean over the last `window` samples; zero when no samples yet.
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] double last() const noexcept;

  /// Window contents for checkpointing. The running sum is serialized too:
  /// it accumulates add/subtract round-off over the window's history, so
  /// recomputing it from the samples would not be bit-exact.
  [[nodiscard]] const std::deque<double>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] double rawSum() const noexcept { return sum_; }
  /// Restore a previously captured window verbatim. Throws
  /// std::invalid_argument when more samples than the window are supplied.
  void restore(std::span<const double> samples, double sum);

 private:
  std::size_t window_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average (alternative smoother; used by the
/// observer when configured for EWMA instead of a sliding window).
class EwmaMean {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit EwmaMean(double alpha);

  void add(double x) noexcept;
  void reset() noexcept { seeded_ = false; value_ = 0.0; }

  [[nodiscard]] bool empty() const noexcept { return !seeded_; }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Five-number-ish summary of a sample vector (used in reports).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs) noexcept;

}  // namespace dike::util
