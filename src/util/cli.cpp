#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace dike::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string{body.substr(0, eq)},
                     std::string{body.substr(eq + 1)});
      continue;
    }
    // "--name value" if the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string_view{argv[i + 1]}.rfind("--", 0) != 0) {
      flags_.emplace(std::string{body}, std::string{argv[i + 1]});
      ++i;
    } else {
      flags_.emplace(std::string{body}, "true");
    }
  }
}

bool CliArgs::has(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

std::optional<std::string> CliArgs::get(std::string_view name) const {
  if (auto it = flags_.find(name); it != flags_.end()) return it->second;
  return std::nullopt;
}

std::string CliArgs::getOr(std::string_view name,
                           std::string_view fallback) const {
  if (auto v = get(name)) return *v;
  return std::string{fallback};
}

int CliArgs::getInt(std::string_view name, int fallback) const {
  if (auto v = get(name)) return std::atoi(v->c_str());
  return fallback;
}

std::int64_t CliArgs::getInt64(std::string_view name,
                               std::int64_t fallback) const {
  if (auto v = get(name)) return std::atoll(v->c_str());
  return fallback;
}

double CliArgs::getDouble(std::string_view name, double fallback) const {
  if (auto v = get(name)) return std::atof(v->c_str());
  return fallback;
}

bool CliArgs::getBool(std::string_view name, bool fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

}  // namespace dike::util
