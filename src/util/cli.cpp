#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

namespace dike::util {

namespace {

/// Parse the full token or fail loudly with the flag name. The previous
/// std::atoi/atoll/atof implementations silently produced 0 for malformed
/// values ("--seed 12x" ran with seed 0), which is exactly the wrong
/// behaviour for experiment configuration.
template <typename T>
T parseOrThrow(std::string_view flag, const std::string& text,
               const char* typeName) {
  T value{};
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size() || text.empty())
    throw std::runtime_error{"--" + std::string{flag} + " expects " +
                             typeName + ", got '" + text + "'"};
  return value;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string{body.substr(0, eq)},
                     std::string{body.substr(eq + 1)});
      continue;
    }
    // "--name value" if the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string_view{argv[i + 1]}.rfind("--", 0) != 0) {
      flags_.emplace(std::string{body}, std::string{argv[i + 1]});
      ++i;
    } else {
      flags_.emplace(std::string{body}, "true");
    }
  }
}

bool CliArgs::has(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

std::optional<std::string> CliArgs::get(std::string_view name) const {
  if (auto it = flags_.find(name); it != flags_.end()) return it->second;
  return std::nullopt;
}

std::string CliArgs::getOr(std::string_view name,
                           std::string_view fallback) const {
  if (auto v = get(name)) return *v;
  return std::string{fallback};
}

int CliArgs::getInt(std::string_view name, int fallback) const {
  if (auto v = get(name)) return parseOrThrow<int>(name, *v, "an integer");
  return fallback;
}

std::int64_t CliArgs::getInt64(std::string_view name,
                               std::int64_t fallback) const {
  if (auto v = get(name))
    return parseOrThrow<std::int64_t>(name, *v, "an integer");
  return fallback;
}

double CliArgs::getDouble(std::string_view name, double fallback) const {
  if (auto v = get(name)) return parseOrThrow<double>(name, *v, "a number");
  return fallback;
}

bool CliArgs::getBool(std::string_view name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::runtime_error{"--" + std::string{name} +
                           " expects a boolean (true/false/1/0/yes/no/"
                           "on/off), got '" + *v + "'"};
}

}  // namespace dike::util
