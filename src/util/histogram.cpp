#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace dike::util {

double percentile(std::span<const double> xs, double p) {
  // Validate p before the empty-input shortcut, and with a negated range
  // test so NaN (for which both p < 0 and p > 100 are false) is rejected
  // instead of flowing into floor()/array indexing as undefined behaviour.
  if (!(p >= 0.0 && p <= 100.0))
    throw std::invalid_argument{"percentile must be in [0, 100], got " +
                                std::to_string(p)};
  if (xs.empty()) return 0.0;
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(std::floor(rank));
  const auto above = static_cast<std::size_t>(std::ceil(rank));
  const double weight = rank - static_cast<double>(below);
  return sorted[below] * (1.0 - weight) + sorted[above] * weight;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo)) throw std::invalid_argument{"histogram needs hi > lo"};
  if (buckets == 0) throw std::invalid_argument{"histogram needs buckets > 0"};
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  const double position = (x - lo_) / span * static_cast<double>(counts_.size());
  const auto bucket = static_cast<std::ptrdiff_t>(std::floor(position));
  const auto clamped = std::clamp<std::ptrdiff_t>(
      bucket, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

void Histogram::addAll(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

double Histogram::bucketLow(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range{"bucket"};
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucketHigh(std::size_t bucket) const {
  return bucketLow(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(int barWidth) const {
  std::size_t first = counts_.size();
  std::size_t last = 0;
  std::size_t peak = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    first = std::min(first, b);
    last = std::max(last, b);
    peak = std::max(peak, counts_[b]);
  }
  if (first > last) return "(empty histogram)\n";

  std::string out;
  for (std::size_t b = first; b <= last; ++b) {
    char label[64];
    std::snprintf(label, sizeof label, "[%+.3f, %+.3f) ", bucketLow(b),
                  bucketHigh(b));
    out += label;
    const auto bar = static_cast<std::size_t>(std::lround(
        static_cast<double>(counts_[b]) * barWidth /
        static_cast<double>(peak)));
    out.append(counts_[b] > 0 ? std::max<std::size_t>(bar, 1) : 0, '#');
    out += " " + std::to_string(counts_[b]) + "\n";
  }
  return out;
}

}  // namespace dike::util
