#include "util/stop.hpp"

#include <csignal>
#include <unistd.h>

#include <atomic>

namespace dike::util {
namespace {

std::atomic<bool> gStopRequested{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free flag");

extern "C" void dikeStopSignalHandler(int signo) {
  // Second signal: the cooperative unwind is taking too long (or is
  // wedged) — force-exit with the conventional status. _exit is
  // async-signal-safe; exit() is not.
  if (gStopRequested.exchange(true, std::memory_order_relaxed)) {
    _exit(128 + signo);
  }
}

}  // namespace

bool stopRequested() noexcept {
  return gStopRequested.load(std::memory_order_relaxed);
}

void requestStop() noexcept {
  gStopRequested.store(true, std::memory_order_relaxed);
}

void resetStopRequest() noexcept {
  gStopRequested.store(false, std::memory_order_relaxed);
}

void installStopSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = dikeStopSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: let blocking syscalls wake up
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

}  // namespace dike::util
