// Crash-atomic file primitives shared by checkpoints and run artifacts.
//
// The supervision story (docs/RESILIENCE.md) needs every artifact a resumed
// run reads — checkpoints, the quantum stream, final reports, registry
// dumps — to be either complete or absent after a kill at any instruction.
// Two shapes cover all of them:
//   * writeFileAtomic / AtomicFileWriter: whole-file replace through
//     "<path>.tmp" + fsync + rename + parent-directory fsync, so the final
//     name never holds a torn file;
//   * AppendFile: an O_APPEND fd with an explicit flushSync() barrier, for
//     streams that grow a record at a time and are trimmed to the last
//     checkpoint on resume (a torn *tail* is recoverable; a torn rewrite of
//     the whole file is not).
#pragma once

#include <string>
#include <string_view>

namespace dike::util {

/// Replace `path` with `bytes` atomically: write "<path>.tmp", fsync it,
/// rename over `path`, fsync the parent directory. Throws
/// std::runtime_error with the path on any failure (the tmp file is
/// removed best-effort).
void writeFileAtomic(const std::string& path, std::string_view bytes);

/// Append-only file handle for crash-trimmable streams. Writes go straight
/// to the fd (O_APPEND), so a kill loses at most the bytes since the last
/// flushSync(); it never corrupts earlier records.
class AppendFile {
 public:
  /// Opens (creating if needed) for append; `truncate` starts it empty.
  /// Throws std::runtime_error with the path when the open fails.
  explicit AppendFile(const std::string& path, bool truncate = false);
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Write all of `bytes` (EINTR-safe). Throws on I/O error.
  void append(std::string_view bytes);

  /// Durability barrier: fsync the fd. After this returns, every appended
  /// byte survives a crash. Throws on failure.
  void flushSync();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Keep only the first `lines` newline-terminated lines of `path`,
/// dropping a torn (unterminated) tail and any complete lines beyond the
/// count; the rewrite itself goes through writeFileAtomic. Returns the
/// number of lines dropped (0 when the file already matches). A missing
/// file with `lines == 0` is fine; a missing file with `lines > 0` throws
/// — the caller promised content that does not exist.
std::int64_t trimFileToLines(const std::string& path, std::int64_t lines);

}  // namespace dike::util
