// Minimal JSON: a strict RFC-8259 parser and writer for experiment
// configuration files (tools/dike_run) and result dumps. No external
// dependencies; documents and values are immutable after parsing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dike::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// Object keys keep insertion order out of scope — std::map is fine for
/// configuration-sized documents and gives deterministic serialisation.
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

/// One JSON value. Numbers are stored as double (configuration files never
/// need 64-bit-exact integers above 2^53).
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string{s}) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool isNull() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool isBool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool isNumber() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool isString() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool isArray() const noexcept {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool isObject() const noexcept {
    return std::holds_alternative<JsonObject>(value_);
  }

  /// Checked accessors: throw std::runtime_error on type mismatch.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const JsonArray& asArray() const;
  [[nodiscard]] const JsonObject& asObject() const;

  // Convenience lookups for configuration reading. All return the fallback
  // (or nullopt) when `this` is not an object, the key is missing, or the
  // type mismatches. NOTE: get() returns a *copy*; do not bind a reference
  // through the returned optional (`const auto& a = v.get("k")->asArray()`
  // dangles) — copy the value or chain within one expression.
  [[nodiscard]] std::optional<JsonValue> get(std::string_view key) const;
  [[nodiscard]] double numberOr(std::string_view key, double fallback) const;
  [[nodiscard]] int intOr(std::string_view key, int fallback) const;
  [[nodiscard]] bool boolOr(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string stringOr(std::string_view key,
                                     std::string_view fallback) const;

  /// Serialise (compact; `indent` > 0 pretty-prints).
  [[nodiscard]] std::string dump(int indent = 0) const;

  [[nodiscard]] friend bool operator==(const JsonValue&, const JsonValue&) =
      default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Parse a complete JSON document. Throws JsonParseError with a byte offset
/// and message on malformed input (trailing garbage included).
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& message);
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

[[nodiscard]] JsonValue parseJson(std::string_view text);

/// Parse a JSON file; wraps I/O failures in std::runtime_error.
[[nodiscard]] JsonValue parseJsonFile(const std::string& path);

}  // namespace dike::util
