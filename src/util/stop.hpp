// Cooperative stop flag wired to SIGINT/SIGTERM so interrupted runs unwind
// cleanly instead of dying mid-write: the simulator loop checks
// stopRequested() once per quantum, returns through the normal path, and
// every telemetry sink (NDJSON quantum stream, decision trace, checkpoint)
// finalises via its destructor — no truncated rows, no half-written JSON.
//
// The handler itself is async-signal-safe: it only stores to a lock-free
// atomic. A second signal while unwinding force-exits with the
// conventional 128+SIGINT status, so a wedged run can still be killed.
#pragma once

namespace dike::util {

/// True once a stop was requested (signal or explicit requestStop()).
[[nodiscard]] bool stopRequested() noexcept;

/// Request a cooperative stop (also what the signal handler does).
void requestStop() noexcept;

/// Clear the flag — for tests that simulate interruption.
void resetStopRequest() noexcept;

/// Install SIGINT/SIGTERM handlers that call requestStop(). Idempotent.
/// The first signal requests a cooperative stop; the second _exit()s with
/// 128+signo.
void installStopSignalHandlers();

}  // namespace dike::util
