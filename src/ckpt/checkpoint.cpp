#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"

namespace dike::ckpt {

namespace {

void append64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void append32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

std::uint64_t read64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  return v;
}

std::uint32_t read32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  return v;
}

// magic(8) + version(4) + payload length(8) + checksum(8)
constexpr std::size_t kHeaderSize = 28;

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string encodeCheckpoint(std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kCheckpointMagic);
  append32(out, kCheckpointVersion);
  append64(out, payload.size());
  append64(out, fnv1a64(payload));
  out.append(payload);
  return out;
}

std::string decodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kCheckpointMagic.size() ||
      bytes.substr(0, kCheckpointMagic.size()) != kCheckpointMagic)
    throw CheckpointError{
        "not a Dike checkpoint (bad magic; expected a file written by "
        "ckpt::writeCheckpointFile)"};
  if (bytes.size() < kHeaderSize)
    throw CheckpointError{"truncated checkpoint: " +
                          std::to_string(bytes.size()) +
                          " bytes is shorter than the " +
                          std::to_string(kHeaderSize) + "-byte header"};
  const std::uint32_t version = read32(bytes, 8);
  if (version != kCheckpointVersion)
    throw CheckpointError{
        "checkpoint format version " + std::to_string(version) +
        " is not supported by this build (expects version " +
        std::to_string(kCheckpointVersion) + "); nothing was restored"};
  const std::uint64_t length = read64(bytes, 12);
  if (bytes.size() - kHeaderSize < length)
    throw CheckpointError{
        "truncated checkpoint: header declares a " + std::to_string(length) +
        "-byte payload but only " +
        std::to_string(bytes.size() - kHeaderSize) + " bytes follow"};
  if (bytes.size() - kHeaderSize > length)
    throw CheckpointError{"corrupt checkpoint: " +
                          std::to_string(bytes.size() - kHeaderSize - length) +
                          " trailing bytes after the declared payload"};
  const std::uint64_t expected = read64(bytes, 20);
  const std::string_view payload = bytes.substr(kHeaderSize, length);
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != expected) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%016llx, expected %016llx",
                  static_cast<unsigned long long>(actual),
                  static_cast<unsigned long long>(expected));
    throw CheckpointError{
        std::string{"corrupt checkpoint: payload checksum "} + buf +
        "; nothing was restored"};
  }
  return std::string{payload};
}

void writeCheckpointFile(const std::string& path, std::string_view payload) {
  // tmp + fsync + rename + parent-dir fsync: a kill -9 at any instruction
  // leaves either the previous checkpoint or the new one under `path`,
  // never a torn file (the supervised-resume path depends on this).
  try {
    util::writeFileAtomic(path, encodeCheckpoint(payload));
  } catch (const std::exception& e) {
    throw CheckpointError{std::string{"cannot write checkpoint: "} +
                          e.what()};
  }
}

std::string readCheckpointFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in)
    throw CheckpointError{"cannot open checkpoint file: " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad())
    throw CheckpointError{"failed reading checkpoint file: " + path};
  try {
    return decodeCheckpoint(buffer.str());
  } catch (const CheckpointError& e) {
    throw CheckpointError{path + ": " + e.what()};
  }
}

std::string checkpointFileName(std::int64_t quantum) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%012lld.ckpt",
                static_cast<long long>(quantum));
  return buf;
}

namespace {

/// Parse the quantum index out of a canonical checkpoint file name;
/// -1 for any other name (still a valid checkpoint, just unordered).
std::int64_t quantumFromFileName(const std::string& name) {
  if (name.rfind("ckpt-", 0) != 0 || name.size() <= 10) return -1;
  const std::string_view digits{name.data() + 5, name.size() - 10};
  if (name.substr(name.size() - 5) != ".ckpt" || digits.empty()) return -1;
  std::int64_t v = 0;
  const auto [end, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  if (ec != std::errc{} || end != digits.data() + digits.size()) return -1;
  return v;
}

}  // namespace

CheckpointDirScan findLatestValidCheckpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  CheckpointDirScan scan;
  std::error_code ec;
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator{dir, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.ends_with(".ckpt"))
      names.push_back(name);
    else if (name.ends_with(".ckpt.tmp"))
      // Expected debris after a kill mid-checkpoint: the atomic-write
      // protocol guarantees the final name was never touched. Reported,
      // not treated as corruption.
      scan.partials.push_back(dir + "/" + name +
                              ": partial write (interrupted before rename)");
  }
  // Zero-padded names make lexicographic descending order == newest first.
  std::sort(names.begin(), names.end(), std::greater<>{});
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    try {
      (void)readCheckpointFile(path);
      scan.path = path;
      scan.quantum = quantumFromFileName(name);
      return scan;
    } catch (const CheckpointError& e) {
      scan.skipped.push_back(std::string{e.what()});
    }
  }
  return scan;
}

}  // namespace dike::ckpt
