// Schema-checked binary archive for run checkpoints.
//
// Every value is written as a (tag, field-name, payload) record and values
// are grouped into named sections, so a reader that expects a different
// field than the writer produced fails immediately with both names and the
// byte offset — a schema check paid once per field, not a silent
// misinterpretation of the byte stream. The same self-description powers
// tools/dike_diff: tokenize() re-parses a payload into a flat token stream
// whose paths ("machine/thread 3/executed") localise the first diverging
// byte to a named quantity.
//
// Encoding rules (all integers little-endian, fixed width):
//   * doubles are stored as their raw IEEE-754 bit pattern (bit-exact
//     round-trip; NaN payloads preserved),
//   * strings and names are u32 length + bytes,
//   * vectors are u32 count + packed payloads.
// The container format around a payload (magic, version, checksum) lives in
// ckpt/checkpoint.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dike::ckpt {

/// Every checkpoint failure — truncation, corruption, schema or version
/// mismatch — throws this; the message carries the offset and field context.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Record type tags. Values are part of the on-disk format — append only.
enum class Tag : std::uint8_t {
  U64 = 1,
  I64 = 2,
  F64 = 3,
  Bool = 4,
  Str = 5,
  VecF64 = 6,
  VecI64 = 7,
  SectionBegin = 8,
  SectionEnd = 9,
};

[[nodiscard]] std::string_view toString(Tag tag) noexcept;

/// Serializer. Field order is the schema: the reader must consume the same
/// fields in the same order, which the per-field name check enforces.
class BinWriter {
 public:
  void u64(std::string_view name, std::uint64_t v);
  void i64(std::string_view name, std::int64_t v);
  void f64(std::string_view name, double v);
  void boolean(std::string_view name, bool v);
  void str(std::string_view name, std::string_view v);
  void vecF64(std::string_view name, std::span<const double> v);
  void vecI64(std::string_view name, std::span<const std::int64_t> v);
  /// Convenience: widen a vector<int> (placement maps, live-thread lists).
  void vecInt(std::string_view name, std::span<const int> v);

  void beginSection(std::string_view name);
  void endSection();

  /// Finish and take the payload. Throws if a section is still open.
  [[nodiscard]] std::string take();
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void header(Tag tag, std::string_view name);
  void raw32(std::uint32_t v);
  void raw64(std::uint64_t v);

  std::string buf_;
  std::vector<std::string> open_;  // open section names, for error messages
};

/// Deserializer over a payload produced by BinWriter. Every accessor
/// verifies the tag and field name before touching the value; every read is
/// bounds-checked, so a truncated payload throws instead of reading past
/// the end — a failed read never yields a value.
class BinReader {
 public:
  explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t u64(std::string_view name);
  [[nodiscard]] std::int64_t i64(std::string_view name);
  [[nodiscard]] double f64(std::string_view name);
  [[nodiscard]] bool boolean(std::string_view name);
  [[nodiscard]] std::string str(std::string_view name);
  [[nodiscard]] std::vector<double> vecF64(std::string_view name);
  [[nodiscard]] std::vector<std::int64_t> vecI64(std::string_view name);
  /// Narrowing counterpart of BinWriter::vecInt; range-checks every element.
  [[nodiscard]] std::vector<int> vecInt(std::string_view name);

  void beginSection(std::string_view name);
  void endSection();

  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= bytes_.size(); }
  /// Throws when payload bytes remain unconsumed (schema drift guard).
  void expectEnd() const;
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }

 private:
  void expectHeader(Tag tag, std::string_view name);
  [[nodiscard]] std::uint32_t raw32(std::string_view what);
  [[nodiscard]] std::uint64_t raw64(std::string_view what);
  [[nodiscard]] std::string_view rawBytes(std::size_t n, std::string_view what);

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// One record of a payload, re-parsed for differential comparison. `path`
/// joins the enclosing section names and the field name with '/'; `bits`
/// is the raw payload (bit pattern for scalars, bytes for strings/vectors)
/// so two tokens compare exactly; `value` is a printable rendering.
struct Token {
  std::string path;
  Tag tag = Tag::U64;
  std::string bits;
  std::string value;
  std::size_t offset = 0;

  [[nodiscard]] friend bool operator==(const Token& a, const Token& b) {
    return a.path == b.path && a.tag == b.tag && a.bits == b.bits;
  }
};

/// Flatten a payload into its token stream. Throws CheckpointError on a
/// malformed payload.
[[nodiscard]] std::vector<Token> tokenize(std::string_view bytes);

}  // namespace dike::ckpt
