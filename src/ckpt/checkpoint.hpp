// Checkpoint file container: magic, format version, length, checksum.
//
// The container makes every failure mode loud before any state is touched:
//   * wrong magic          -> "not a Dike checkpoint",
//   * unknown version      -> names both versions,
//   * short file           -> "truncated",
//   * bit rot in the body  -> checksum mismatch.
// Only a payload that passes all four checks is handed to the restore path,
// so a restore either succeeds completely or changes nothing (the caller
// builds the run state into fresh objects that are discarded on throw).
//
// Files are written to `path + ".tmp"` and renamed into place, so a crash
// mid-write can never leave a half-written checkpoint under the final name.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ckpt/archive.hpp"

namespace dike::ckpt {

/// On-disk format version. Bump on any payload schema change.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// 8-byte file magic.
inline constexpr std::string_view kCheckpointMagic = "DIKECKPT";

/// 64-bit FNV-1a (the payload checksum).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Wrap a payload in the container (magic + version + length + checksum).
[[nodiscard]] std::string encodeCheckpoint(std::string_view payload);

/// Validate a container and return its payload. Throws CheckpointError on
/// any of the four failure modes above.
[[nodiscard]] std::string decodeCheckpoint(std::string_view bytes);

/// Atomically write `encodeCheckpoint(payload)` to `path` (tmp + rename).
void writeCheckpointFile(const std::string& path, std::string_view payload);

/// Read and validate a checkpoint file; returns the payload.
[[nodiscard]] std::string readCheckpointFile(const std::string& path);

}  // namespace dike::ckpt
