// Checkpoint file container: magic, format version, length, checksum.
//
// The container makes every failure mode loud before any state is touched:
//   * wrong magic          -> "not a Dike checkpoint",
//   * unknown version      -> names both versions,
//   * short file           -> "truncated",
//   * bit rot in the body  -> checksum mismatch.
// Only a payload that passes all four checks is handed to the restore path,
// so a restore either succeeds completely or changes nothing (the caller
// builds the run state into fresh objects that are discarded on throw).
//
// Files are written to `path + ".tmp"`, fsynced, and renamed into place, so
// a crash mid-write (or a kill -9 at any instruction) can never leave a
// half-written checkpoint under the final name.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/archive.hpp"

namespace dike::ckpt {

/// On-disk format version. Bump on any payload schema change.
/// History: 1 = PR 4 initial format; 2 = run payload gained the optional
/// quantum-stream cursor (supervised-run resume).
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// 8-byte file magic.
inline constexpr std::string_view kCheckpointMagic = "DIKECKPT";

/// 64-bit FNV-1a (the payload checksum).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Wrap a payload in the container (magic + version + length + checksum).
[[nodiscard]] std::string encodeCheckpoint(std::string_view payload);

/// Validate a container and return its payload. Throws CheckpointError on
/// any of the four failure modes above.
[[nodiscard]] std::string decodeCheckpoint(std::string_view bytes);

/// Atomically write `encodeCheckpoint(payload)` to `path` (tmp + rename).
void writeCheckpointFile(const std::string& path, std::string_view payload);

/// Read and validate a checkpoint file; returns the payload.
[[nodiscard]] std::string readCheckpointFile(const std::string& path);

/// Canonical rolling-checkpoint file name for quantum N:
/// "ckpt-000000000042.ckpt" — zero-padded so lexicographic order is quantum
/// order, which is what findLatestValidCheckpoint scans by.
[[nodiscard]] std::string checkpointFileName(std::int64_t quantum);

/// Result of scanning a checkpoint directory for the newest usable file.
struct CheckpointDirScan {
  std::string path;           ///< newest valid checkpoint; empty when none
  std::int64_t quantum = -1;  ///< index parsed from its name; -1 if unnamed
  /// Every ".ckpt" file that failed validation (corrupt, truncated, wrong
  /// version), as "path: reason" strings — loud by construction, counted by
  /// callers. Damage here means bytes under the *final* name are bad.
  std::vector<std::string> skipped;
  /// ".ckpt.tmp" leftovers from a writer killed before its atomic rename.
  /// Expected debris after a crash, reported separately so callers do not
  /// mistake a cleanly-interrupted write for on-disk corruption.
  std::vector<std::string> partials;
};

/// Scan `dir` for "*.ckpt" files (plus partial "*.ckpt.tmp" debris), newest
/// name first, and return the first one that passes full container
/// validation. Invalid files are skipped and reported, so a corrupt newest
/// checkpoint falls back to the previous good one instead of wedging
/// resume. A missing or empty directory returns an empty scan.
[[nodiscard]] CheckpointDirScan findLatestValidCheckpoint(
    const std::string& dir);

}  // namespace dike::ckpt
