// Archive adapters for the util-layer stateful types (RNG streams and
// statistics accumulators). These capture *exact* internal state — raw
// xoshiro words, the Box-Muller spare, Welford accumulators, moving-window
// running sums — because all of it is path dependent: re-deriving any of it
// from observable values would break bit-exact resume.
#pragma once

#include "ckpt/archive.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dike::ckpt {

inline void save(BinWriter& w, std::string_view name, const util::Rng& rng) {
  const util::Rng::State s = rng.state();
  w.beginSection(name);
  w.u64("s0", s.s[0]);
  w.u64("s1", s.s[1]);
  w.u64("s2", s.s[2]);
  w.u64("s3", s.s[3]);
  w.f64("spare", s.spare);
  w.boolean("haveSpare", s.haveSpare);
  w.endSection();
}

inline void load(BinReader& r, std::string_view name, util::Rng& rng) {
  util::Rng::State s;
  r.beginSection(name);
  s.s[0] = r.u64("s0");
  s.s[1] = r.u64("s1");
  s.s[2] = r.u64("s2");
  s.s[3] = r.u64("s3");
  s.spare = r.f64("spare");
  s.haveSpare = r.boolean("haveSpare");
  r.endSection();
  rng.setState(s);
}

inline void save(BinWriter& w, std::string_view name,
                 const util::OnlineStats& stats) {
  const util::OnlineStats::State s = stats.state();
  w.beginSection(name);
  w.u64("n", s.n);
  w.f64("mean", s.mean);
  w.f64("m2", s.m2);
  w.f64("min", s.min);
  w.f64("max", s.max);
  w.endSection();
}

inline void load(BinReader& r, std::string_view name,
                 util::OnlineStats& stats) {
  util::OnlineStats::State s;
  r.beginSection(name);
  s.n = r.u64("n");
  s.mean = r.f64("mean");
  s.m2 = r.f64("m2");
  s.min = r.f64("min");
  s.max = r.f64("max");
  r.endSection();
  stats.setState(s);
}

inline void save(BinWriter& w, std::string_view name,
                 const util::MovingMean& mm) {
  w.beginSection(name);
  w.u64("window", mm.window());
  const std::vector<double> samples{mm.samples().begin(), mm.samples().end()};
  w.vecF64("samples", samples);
  w.f64("sum", mm.rawSum());
  w.endSection();
}

/// The MovingMean must already be constructed with its configured window —
/// window size is configuration, not state — and the checkpointed window
/// must agree, else the configs differ and the restore refuses.
inline void load(BinReader& r, std::string_view name, util::MovingMean& mm) {
  r.beginSection(name);
  const std::uint64_t window = r.u64("window");
  if (window != mm.window())
    throw CheckpointError{
        "checkpointed MovingMean '" + std::string{name} + "' has window " +
        std::to_string(window) + " but this configuration uses " +
        std::to_string(mm.window()) +
        " — the checkpoint was taken under a different config"};
  const std::vector<double> samples = r.vecF64("samples");
  const double sum = r.f64("sum");
  r.endSection();
  mm.restore(samples, sum);
}

}  // namespace dike::ckpt
