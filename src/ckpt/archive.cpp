#include "ckpt/archive.hpp"

#include <bit>
#include <cstdio>
#include <limits>

namespace dike::ckpt {

namespace {

constexpr std::size_t kMaxNameLength = 4096;

std::string printable(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (static_cast<unsigned char>(c) >= 0x20 &&
        static_cast<unsigned char>(c) < 0x7F) {
      out.push_back(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    }
  }
  return out;
}

std::string formatF64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string_view toString(Tag tag) noexcept {
  switch (tag) {
    case Tag::U64: return "u64";
    case Tag::I64: return "i64";
    case Tag::F64: return "f64";
    case Tag::Bool: return "bool";
    case Tag::Str: return "str";
    case Tag::VecF64: return "vec<f64>";
    case Tag::VecI64: return "vec<i64>";
    case Tag::SectionBegin: return "section-begin";
    case Tag::SectionEnd: return "section-end";
  }
  return "?";
}

// ---------------------------------------------------------------- BinWriter

void BinWriter::raw32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    buf_.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void BinWriter::raw64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    buf_.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void BinWriter::header(Tag tag, std::string_view name) {
  buf_.push_back(static_cast<char>(tag));
  raw32(static_cast<std::uint32_t>(name.size()));
  buf_.append(name);
}

void BinWriter::u64(std::string_view name, std::uint64_t v) {
  header(Tag::U64, name);
  raw64(v);
}

void BinWriter::i64(std::string_view name, std::int64_t v) {
  header(Tag::I64, name);
  raw64(static_cast<std::uint64_t>(v));
}

void BinWriter::f64(std::string_view name, double v) {
  header(Tag::F64, name);
  raw64(std::bit_cast<std::uint64_t>(v));
}

void BinWriter::boolean(std::string_view name, bool v) {
  header(Tag::Bool, name);
  buf_.push_back(v ? 1 : 0);
}

void BinWriter::str(std::string_view name, std::string_view v) {
  header(Tag::Str, name);
  raw32(static_cast<std::uint32_t>(v.size()));
  buf_.append(v);
}

void BinWriter::vecF64(std::string_view name, std::span<const double> v) {
  header(Tag::VecF64, name);
  raw32(static_cast<std::uint32_t>(v.size()));
  for (const double x : v) raw64(std::bit_cast<std::uint64_t>(x));
}

void BinWriter::vecI64(std::string_view name,
                       std::span<const std::int64_t> v) {
  header(Tag::VecI64, name);
  raw32(static_cast<std::uint32_t>(v.size()));
  for (const std::int64_t x : v) raw64(static_cast<std::uint64_t>(x));
}

void BinWriter::vecInt(std::string_view name, std::span<const int> v) {
  header(Tag::VecI64, name);
  raw32(static_cast<std::uint32_t>(v.size()));
  for (const int x : v) raw64(static_cast<std::uint64_t>(std::int64_t{x}));
}

void BinWriter::beginSection(std::string_view name) {
  header(Tag::SectionBegin, name);
  open_.emplace_back(name);
}

void BinWriter::endSection() {
  if (open_.empty())
    throw CheckpointError{"BinWriter::endSection with no open section"};
  header(Tag::SectionEnd, open_.back());
  open_.pop_back();
}

std::string BinWriter::take() {
  if (!open_.empty())
    throw CheckpointError{"BinWriter::take with unclosed section '" +
                          open_.back() + "'"};
  return std::move(buf_);
}

// ---------------------------------------------------------------- BinReader

std::string_view BinReader::rawBytes(std::size_t n, std::string_view what) {
  if (bytes_.size() - pos_ < n)
    throw CheckpointError{"truncated checkpoint payload at offset " +
                          std::to_string(pos_) + " while reading " +
                          std::string{what}};
  const std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::uint32_t BinReader::raw32(std::string_view what) {
  const std::string_view b = rawBytes(4, what);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  return v;
}

std::uint64_t BinReader::raw64(std::string_view what) {
  const std::string_view b = rawBytes(8, what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  return v;
}

void BinReader::expectHeader(Tag tag, std::string_view name) {
  const std::size_t at = pos_;
  const std::string_view tagByte = rawBytes(1, "record tag");
  const auto found = static_cast<Tag>(static_cast<unsigned char>(tagByte[0]));
  const std::uint32_t nameLen = raw32("field-name length");
  if (nameLen > kMaxNameLength)
    throw CheckpointError{"corrupt checkpoint payload at offset " +
                          std::to_string(at) + ": implausible field-name " +
                          "length " + std::to_string(nameLen)};
  const std::string_view foundName = rawBytes(nameLen, "field name");
  if (found != tag || foundName != name)
    throw CheckpointError{
        "checkpoint schema mismatch at offset " + std::to_string(at) +
        ": expected " + std::string{toString(tag)} + " '" + std::string{name} +
        "', found " + std::string{toString(found)} + " '" +
        printable(foundName) + "'"};
}

std::uint64_t BinReader::u64(std::string_view name) {
  expectHeader(Tag::U64, name);
  return raw64(name);
}

std::int64_t BinReader::i64(std::string_view name) {
  expectHeader(Tag::I64, name);
  return static_cast<std::int64_t>(raw64(name));
}

double BinReader::f64(std::string_view name) {
  expectHeader(Tag::F64, name);
  return std::bit_cast<double>(raw64(name));
}

bool BinReader::boolean(std::string_view name) {
  expectHeader(Tag::Bool, name);
  return rawBytes(1, name)[0] != 0;
}

std::string BinReader::str(std::string_view name) {
  expectHeader(Tag::Str, name);
  const std::uint32_t len = raw32(name);
  return std::string{rawBytes(len, name)};
}

std::vector<double> BinReader::vecF64(std::string_view name) {
  expectHeader(Tag::VecF64, name);
  const std::uint32_t count = raw32(name);
  std::vector<double> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    out.push_back(std::bit_cast<double>(raw64(name)));
  return out;
}

std::vector<std::int64_t> BinReader::vecI64(std::string_view name) {
  expectHeader(Tag::VecI64, name);
  const std::uint32_t count = raw32(name);
  std::vector<std::int64_t> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    out.push_back(static_cast<std::int64_t>(raw64(name)));
  return out;
}

std::vector<int> BinReader::vecInt(std::string_view name) {
  const std::size_t at = pos_;
  const std::vector<std::int64_t> wide = vecI64(name);
  std::vector<int> out;
  out.reserve(wide.size());
  for (const std::int64_t v : wide) {
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max())
      throw CheckpointError{"checkpoint field '" + std::string{name} +
                            "' at offset " + std::to_string(at) +
                            " holds a value outside int range"};
    out.push_back(static_cast<int>(v));
  }
  return out;
}

void BinReader::beginSection(std::string_view name) {
  expectHeader(Tag::SectionBegin, name);
}

void BinReader::endSection() {
  const std::size_t at = pos_;
  const std::string_view tagByte = rawBytes(1, "section end");
  const auto found = static_cast<Tag>(static_cast<unsigned char>(tagByte[0]));
  const std::uint32_t nameLen = raw32("section-end name length");
  if (nameLen > kMaxNameLength)
    throw CheckpointError{"corrupt checkpoint payload at offset " +
                          std::to_string(at) +
                          ": implausible section-name length"};
  const std::string_view name = rawBytes(nameLen, "section-end name");
  if (found != Tag::SectionEnd)
    throw CheckpointError{"checkpoint schema mismatch at offset " +
                          std::to_string(at) + ": expected end of section, " +
                          "found " + std::string{toString(found)} + " '" +
                          printable(name) + "'"};
}

void BinReader::expectEnd() const {
  if (pos_ < bytes_.size())
    throw CheckpointError{
        "checkpoint payload has " + std::to_string(bytes_.size() - pos_) +
        " unconsumed trailing bytes (schema drift between writer and reader)"};
}

// ----------------------------------------------------------------- tokenize

std::vector<Token> tokenize(std::string_view bytes) {
  std::vector<Token> tokens;
  std::vector<std::string> path;
  std::size_t pos = 0;
  const auto need = [&](std::size_t n, const char* what) -> std::string_view {
    if (bytes.size() - pos < n)
      throw CheckpointError{"truncated checkpoint payload at offset " +
                            std::to_string(pos) + " while tokenizing " +
                            what};
    const std::string_view out = bytes.substr(pos, n);
    pos += n;
    return out;
  };
  const auto get32 = [&](const char* what) {
    const std::string_view b = need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    return v;
  };
  const auto get64 = [&](const char* what) {
    const std::string_view b = need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    return v;
  };
  const auto joinPath = [&](std::string_view leaf) {
    std::string out;
    for (const std::string& p : path) {
      out += p;
      out += '/';
    }
    out += leaf;
    return out;
  };

  while (pos < bytes.size()) {
    const std::size_t at = pos;
    const auto tag =
        static_cast<Tag>(static_cast<unsigned char>(need(1, "tag")[0]));
    const std::uint32_t nameLen = get32("name length");
    if (nameLen > kMaxNameLength)
      throw CheckpointError{"corrupt checkpoint payload at offset " +
                            std::to_string(at) +
                            ": implausible field-name length"};
    const std::string name{need(nameLen, "name")};

    Token tok;
    tok.tag = tag;
    tok.offset = at;
    switch (tag) {
      case Tag::SectionBegin:
        path.push_back(name);
        continue;
      case Tag::SectionEnd:
        if (path.empty())
          throw CheckpointError{"corrupt checkpoint payload at offset " +
                                std::to_string(at) +
                                ": section end without a section"};
        path.pop_back();
        continue;
      case Tag::U64: {
        const std::uint64_t v = get64(name.c_str());
        tok.bits = std::string{bytes.substr(pos - 8, 8)};
        tok.value = std::to_string(v);
        break;
      }
      case Tag::I64: {
        const auto v = static_cast<std::int64_t>(get64(name.c_str()));
        tok.bits = std::string{bytes.substr(pos - 8, 8)};
        tok.value = std::to_string(v);
        break;
      }
      case Tag::F64: {
        const double v = std::bit_cast<double>(get64(name.c_str()));
        tok.bits = std::string{bytes.substr(pos - 8, 8)};
        tok.value = formatF64(v);
        break;
      }
      case Tag::Bool: {
        const char v = need(1, name.c_str())[0];
        tok.bits = std::string(1, v);
        tok.value = v != 0 ? "true" : "false";
        break;
      }
      case Tag::Str: {
        const std::uint32_t len = get32(name.c_str());
        tok.bits = std::string{need(len, name.c_str())};
        tok.value = '"' + printable(tok.bits) + '"';
        break;
      }
      case Tag::VecF64:
      case Tag::VecI64: {
        const std::uint32_t count = get32(name.c_str());
        const std::string_view payload =
            need(std::size_t{count} * 8, name.c_str());
        tok.bits = std::string{payload};
        tok.value = '[';
        for (std::uint32_t i = 0; i < count; ++i) {
          if (i > 0) tok.value += ", ";
          std::uint64_t v = 0;
          for (int b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(payload[i * 8 + b]))
                 << (8 * b);
          tok.value += tag == Tag::VecF64
                           ? formatF64(std::bit_cast<double>(v))
                           : std::to_string(static_cast<std::int64_t>(v));
        }
        tok.value += ']';
        break;
      }
      default:
        throw CheckpointError{"corrupt checkpoint payload at offset " +
                              std::to_string(at) + ": unknown record tag " +
                              std::to_string(static_cast<unsigned>(tag))};
    }
    tok.path = joinPath(name);
    tokens.push_back(std::move(tok));
  }
  if (!path.empty())
    throw CheckpointError{"corrupt checkpoint payload: section '" +
                          path.back() + "' never ends"};
  return tokens;
}

}  // namespace dike::ckpt
