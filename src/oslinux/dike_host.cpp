#include "oslinux/dike_host.hpp"

#include <unistd.h>

#include <algorithm>
#include <thread>

#include "oslinux/affinity.hpp"
#include "oslinux/procstat.hpp"
#include "telemetry/registry.hpp"
#include "util/log.hpp"

namespace dike::oslinux {

namespace {

double clockTicksPerSecond() {
  const long hz = ::sysconf(_SC_CLK_TCK);
  return hz > 0 ? static_cast<double>(hz) : 100.0;
}

/// Open the LLC counter pair for one thread, logging an actionable message
/// (counter name, tid, paranoid-level hint) on the first failure.
void openThreadCounters(HostThread& t) {
  std::error_code ec;
  t.llcMisses = PerfCounter::open(PerfEventKind::LlcMisses, t.tid, ec);
  if (ec) {
    util::logDebug("dike-host: ",
                   describePerfError(PerfEventKind::LlcMisses, t.tid, -1, ec));
    return;
  }
  t.llcRefs = PerfCounter::open(PerfEventKind::LlcReferences, t.tid, ec);
  if (ec) {
    util::logDebug(
        "dike-host: ",
        describePerfError(PerfEventKind::LlcReferences, t.tid, -1, ec));
    t.llcMisses.reset();
  }
}

}  // namespace

DikeHost::DikeHost(HostConfig config)
    : config_(config),
      observer_(config.dike.observer),
      selector_(core::SelectorConfig{config.dike.fairnessThreshold,
                                     config.dike.rotateWhenNoViolator,
                                     config.dike.pairRateMargin}),
      predictor_(core::PredictorConfig{config.dike.swapOhMs}),
      decider_(core::DeciderConfig{config.dike.cooldownQuanta,
                                   config.dike.minCooldownMs,
                                   config.dike.requirePositiveProfit}) {}

std::error_code DikeHost::addProcess(pid_t pid) {
  const std::vector<pid_t> tids = listThreads(pid);
  if (tids.empty())
    return std::make_error_code(std::errc::no_such_process);
  for (const pid_t tid : tids) {
    if (threads_.count(tid) != 0) continue;
    HostThread t;
    t.pid = pid;
    t.tid = tid;
    t.denseId = nextDenseId_++;
    if (config_.usePerf) {
      openThreadCounters(t);
      if (t.llcMisses && t.llcRefs) perfActive_ = true;
    }
    threads_.emplace(tid, std::move(t));
  }
  return {};
}

std::error_code DikeHost::initialize() {
  if (threads_.empty())
    return std::make_error_code(std::errc::invalid_argument);

  // Discover schedulable cpus and their sockets.
  cpus_ = config_.cpus;
  cpuSocket_.clear();
  const auto topology = readHostTopology();
  if (cpus_.empty()) {
    if (topology) {
      for (const HostCpu& c : topology->cpus) cpus_.push_back(c.id);
    } else {
      const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
      for (int c = 0; c < std::max(1L, n); ++c) cpus_.push_back(c);
    }
  }
  for (const int cpu : cpus_) {
    int socket = 0;
    if (topology) {
      for (const HostCpu& c : topology->cpus)
        if (c.id == cpu) socket = std::max(0, c.package);
    }
    cpuSocket_.push_back(socket);
  }

  // Initial placement: round-robin pinning (the CFS-agnostic starting
  // point; Dike corrects it from here).
  std::size_t next = 0;
  for (auto& [tid, thread] : threads_) {
    const int cpu = cpus_[next % cpus_.size()];
    if (const std::error_code ec = pinToCpu(tid, cpu)) return ec;
    thread.cpu = static_cast<int>(next % cpus_.size());
    ++next;
  }
  lastSample_ = std::chrono::steady_clock::now();
  initialized_ = true;
  return {};
}

void DikeHost::adoptNewThreads() {
  // Processes may spawn workers after registration (OpenMP teams start at
  // the first parallel region). Adopt them and pin to the least-loaded cpu.
  std::vector<pid_t> pids;
  for (const auto& [tid, t] : threads_)
    if (std::find(pids.begin(), pids.end(), t.pid) == pids.end())
      pids.push_back(t.pid);
  for (const pid_t pid : pids) {
    for (const pid_t tid : listThreads(pid)) {
      if (threads_.count(tid) != 0) continue;
      HostThread t;
      t.pid = pid;
      t.tid = tid;
      t.denseId = nextDenseId_++;
      if (config_.usePerf) openThreadCounters(t);
      const int cpuIdx = leastLoadedCpuIndex();
      if (!pinToCpu(tid, cpus_[static_cast<std::size_t>(cpuIdx)]))
        t.cpu = cpuIdx;
      threads_.emplace(tid, std::move(t));
    }
  }
}

int DikeHost::leastLoadedCpuIndex() const {
  std::vector<int> load(cpus_.size(), 0);
  for (const auto& [tid, t] : threads_)
    if (t.cpu >= 0) ++load[static_cast<std::size_t>(t.cpu)];
  int best = 0;
  for (int i = 1; i < static_cast<int>(load.size()); ++i)
    if (load[static_cast<std::size_t>(i)] <
        load[static_cast<std::size_t>(best)])
      best = i;
  return best;
}

void DikeHost::pruneDeadThreads() {
  for (auto it = threads_.begin(); it != threads_.end();) {
    if (readProcStat(it->second.pid, it->first).has_value())
      ++it;
    else
      it = threads_.erase(it);
  }
}

core::Observation DikeHost::sampleObservation(double periodSeconds) {
  core::Observation obs;
  obs.sample.periodTicks =
      std::max<util::Tick>(1, static_cast<util::Tick>(periodSeconds * 1e3));
  obs.sample.coreAchievedBw.assign(cpus_.size(), 0.0);
  obs.coreOccupant.assign(cpus_.size(), -1);
  obs.coreSocket = cpuSocket_;

  const double tickHz = clockTicksPerSecond();
  for (auto& [tid, t] : threads_) {
    const auto stat = readProcStat(t.pid, tid);
    if (!stat) continue;

    sim::ThreadSample s;
    s.threadId = t.denseId;
    s.processId = static_cast<int>(t.pid);
    s.coreId = t.cpu;

    const unsigned long long utime = stat->utimeTicks + stat->stimeTicks;
    const double utimeRate =
        t.haveBaseline && utime >= t.lastUtime
            ? static_cast<double>(utime - t.lastUtime) / tickHz / periodSeconds
            : 0.0;
    t.lastUtime = utime;

    bool perfOk = false;
    if (t.llcMisses && t.llcRefs) {
      const auto misses = t.llcMisses->readDelta();
      const auto refs = t.llcRefs->readDelta();
      if (misses && refs) {
        t.perfReadFailures = 0;
        if (t.haveBaseline) {
          s.accessRate = static_cast<double>(*misses) / periodSeconds;
          s.llcMissRatio =
              *refs > 0 ? std::clamp(static_cast<double>(*misses) /
                                         static_cast<double>(*refs),
                                     0.0, 1.0)
                        : 0.0;
          perfOk = true;
        }
      } else if (++t.perfReadFailures >= config_.perfReadFailureLimit) {
        // Estimate-only degradation: the counters are wedged (fd revoked,
        // PMU contention, thread in teardown) — drop them for good rather
        // than burning a failed read every quantum.
        t.llcMisses.reset();
        t.llcRefs.reset();
        DIKE_COUNTER("oslinux.perf.degraded");
        util::logDebug("dike-host: tid ", tid, " degraded to utime proxy after ",
                       t.perfReadFailures, " failed counter reads");
      }
    }
    if (!perfOk) {
      // Proxy mode: cpu-time progress as the rate signal; classify as
      // compute so Dike equalises progress rather than chasing bandwidth.
      s.accessRate = utimeRate * 1e9;
      s.llcMissRatio = 0.05;
    }
    s.accesses = s.accessRate * periodSeconds;
    t.haveBaseline = true;

    if (t.cpu >= 0) {
      obs.sample.coreAchievedBw[static_cast<std::size_t>(t.cpu)] +=
          s.accessRate;
      obs.coreOccupant[static_cast<std::size_t>(t.cpu)] = t.denseId;
    }
    obs.sample.threads.push_back(s);
  }
  return obs;
}

HostQuantumReport DikeHost::runQuantum() {
  HostQuantumReport report;
  report.perfActive = perfActive_;
  if (!initialized_) return report;

  pruneDeadThreads();
  adoptNewThreads();
  report.liveThreads = managedThreadCount();
  if (threads_.empty()) return report;

  const auto now = std::chrono::steady_clock::now();
  const double periodSeconds = std::max(
      1e-3, std::chrono::duration<double>(now - lastSample_).count());
  lastSample_ = now;

  observer_.observe(sampleObservation(periodSeconds));
  report.unfairness = observer_.systemUnfairness();

  if (report.unfairness < config_.dike.fairnessThreshold) {
    ++quantumIndex_;
    return report;
  }

  const util::Tick quantaTicks =
      util::millisToTicks(config_.dike.params.quantaLengthMs);
  const util::Tick nowTicks = quantumIndex_ * quantaTicks;
  // Arena-backed selection, matching core/dike_scheduler.cpp: the scratch
  // and pair buffers are members, so steady-state quanta allocate nothing
  // and the host path cannot drift from the simulator pipeline.
  selector_.formPairsInto(observer_, config_.dike.params.swapSize * 2,
                          selectorScratch_, pairs_);
  const std::vector<core::ThreadPair>& pairs = pairs_;
  const int maxSwaps = config_.dike.params.swapSize / 2;

  for (const core::ThreadPair& pair : pairs) {
    if (report.swapsExecuted >= maxSwaps) break;
    const core::SwapPrediction prediction = predictor_.predict(
        observer_, pair, config_.dike.params.quantaLengthMs);
    if (!decider_.shouldSwap(prediction, nowTicks, quantaTicks)) continue;

    // Map dense ids back to tids.
    HostThread* low = nullptr;
    HostThread* high = nullptr;
    for (auto& [tid, t] : threads_) {
      if (t.denseId == pair.lowThread) low = &t;
      if (t.denseId == pair.highThread) high = &t;
    }
    if (low == nullptr || high == nullptr || low->cpu < 0 || high->cpu < 0)
      continue;

    if (pinToCpu(low->tid, cpus_[static_cast<std::size_t>(high->cpu)]))
      continue;
    if (pinToCpu(high->tid, cpus_[static_cast<std::size_t>(low->cpu)])) {
      // Roll the first pin back on partial failure.
      (void)pinToCpu(low->tid, cpus_[static_cast<std::size_t>(low->cpu)]);
      continue;
    }
    std::swap(low->cpu, high->cpu);
    decider_.recordSwap(pair, nowTicks);
    ++report.swapsExecuted;
    ++swaps_;
    util::logDebug("dike-host: swapped tid ", low->tid, " <-> ", high->tid);
  }
  ++quantumIndex_;
  return report;
}

void DikeHost::runFor(std::chrono::milliseconds duration) {
  const auto deadline = std::chrono::steady_clock::now() + duration;
  const auto quantum =
      std::chrono::milliseconds(config_.dike.params.quantaLengthMs);
  while (std::chrono::steady_clock::now() < deadline && !threads_.empty()) {
    std::this_thread::sleep_for(quantum);
    (void)runQuantum();
  }
}

}  // namespace dike::oslinux
