#include "oslinux/cpufreq.hpp"

#include <algorithm>
#include <fstream>

#include "oslinux/cpulist.hpp"
#include "oslinux/retry.hpp"

namespace dike::oslinux {

namespace {

std::optional<std::string> readTrimmed(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::string content{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
  while (!content.empty() &&
         (content.back() == '\n' || content.back() == ' ' ||
          content.back() == '\r'))
    content.pop_back();
  return content;
}

std::optional<double> readKhzAsGhz(const std::filesystem::path& path) {
  const auto text = readTrimmed(path);
  if (!text) return std::nullopt;
  try {
    return std::stod(*text) / 1e6;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<CpufreqPolicy> readCpufreqPolicy(
    int cpu, const std::filesystem::path& root) {
  const std::filesystem::path dir =
      root / ("cpu" + std::to_string(cpu)) / "cpufreq";
  CpufreqPolicy policy;
  policy.cpu = cpu;

  const auto governor = readTrimmed(dir / "scaling_governor");
  const auto minFreq = readKhzAsGhz(dir / "scaling_min_freq");
  const auto maxFreq = readKhzAsGhz(dir / "scaling_max_freq");
  if (!governor || !minFreq || !maxFreq) return std::nullopt;
  policy.governor = *governor;
  policy.minFreqGhz = *minFreq;
  policy.maxFreqGhz = *maxFreq;
  policy.curFreqGhz = readKhzAsGhz(dir / "scaling_cur_freq").value_or(0.0);
  policy.hwMaxFreqGhz = readKhzAsGhz(dir / "cpuinfo_max_freq").value_or(0.0);
  return policy;
}

std::vector<CpufreqPolicy> readAllCpufreqPolicies(
    const std::filesystem::path& root) {
  std::vector<CpufreqPolicy> policies;
  std::ifstream onlineFile{root / "online"};
  if (!onlineFile) return policies;
  std::string onlineText{std::istreambuf_iterator<char>{onlineFile},
                         std::istreambuf_iterator<char>{}};
  const auto online = parseCpuList(onlineText);
  if (!online) return policies;
  for (const int cpu : *online) {
    if (auto policy = readCpufreqPolicy(cpu, root))
      policies.push_back(std::move(*policy));
  }
  return policies;
}

SpeedPartition partitionBySpeed(const std::vector<CpufreqPolicy>& policies) {
  SpeedPartition partition;
  if (policies.size() < 2) return partition;
  double lo = policies.front().maxFreqGhz;
  double hi = lo;
  for (const CpufreqPolicy& p : policies) {
    lo = std::min(lo, p.maxFreqGhz);
    hi = std::max(hi, p.maxFreqGhz);
  }
  if (hi - lo < 1e-9) return partition;  // homogeneous
  const double midpoint = (lo + hi) / 2.0;
  for (const CpufreqPolicy& p : policies)
    (p.maxFreqGhz >= midpoint ? partition.fast : partition.slow)
        .push_back(p.cpu);
  return partition;
}

std::error_code writeMaxFrequency(int cpu, double freqGhz,
                                  const std::filesystem::path& root) {
  if (freqGhz <= 0.0)
    return std::make_error_code(std::errc::invalid_argument);
  const std::filesystem::path path = root / ("cpu" + std::to_string(cpu)) /
                                     "cpufreq" / "scaling_max_freq";
  std::ofstream out{path};
  if (!out) return std::make_error_code(std::errc::permission_denied);
  out << static_cast<long long>(freqGhz * 1e6);
  out.flush();
  if (!out) return std::make_error_code(std::errc::io_error);
  return {};
}

std::error_code writeMaxFrequencyRetrying(int cpu, double freqGhz,
                                          const std::filesystem::path& root) {
  return retryWithBackoff(
      [&] { return writeMaxFrequency(cpu, freqGhz, root); });
}

}  // namespace dike::oslinux
