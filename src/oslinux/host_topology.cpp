#include "oslinux/host_topology.hpp"

#include <fstream>
#include <string>

#include "oslinux/cpulist.hpp"

namespace dike::oslinux {

namespace {

std::optional<std::string> readFile(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::string content{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
  return content;
}

std::optional<long> readLong(const std::filesystem::path& path) {
  const auto content = readFile(path);
  if (!content) return std::nullopt;
  try {
    return std::stol(*content);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

int HostTopology::socketCount() const {
  int count = 0;
  for (const HostCpu& c : cpus) count = std::max(count, c.package + 1);
  return count;
}

std::vector<int> HostTopology::smtSiblings(int cpuId) const {
  const HostCpu* self = nullptr;
  for (const HostCpu& c : cpus)
    if (c.id == cpuId) self = &c;
  std::vector<int> siblings;
  if (self == nullptr) return siblings;
  for (const HostCpu& c : cpus)
    if (c.package == self->package && c.coreId == self->coreId)
      siblings.push_back(c.id);
  return siblings;
}

std::optional<HostTopology> readHostTopology(
    const std::filesystem::path& root) {
  const auto onlineText = readFile(root / "online");
  if (!onlineText) return std::nullopt;
  const auto online = parseCpuList(*onlineText);
  if (!online || online->empty()) return std::nullopt;

  HostTopology topo;
  for (int cpu : *online) {
    const std::filesystem::path cpuDir = root / ("cpu" + std::to_string(cpu));
    HostCpu info;
    info.id = cpu;
    if (const auto pkg = readLong(cpuDir / "topology/physical_package_id"))
      info.package = static_cast<int>(*pkg);
    else
      return std::nullopt;
    if (const auto core = readLong(cpuDir / "topology/core_id"))
      info.coreId = static_cast<int>(*core);
    else
      return std::nullopt;
    // Frequency is optional (not exposed in VMs/containers).
    if (const auto khz = readLong(cpuDir / "cpufreq/cpuinfo_max_freq"))
      info.maxFreqGhz = static_cast<double>(*khz) / 1e6;
    topo.cpus.push_back(info);
  }
  return topo;
}

}  // namespace dike::oslinux
