// Parsing of the kernel's cpulist format ("0-3,8,10-11"), used throughout
// /sys/devices/system/cpu.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace dike::oslinux {

/// Parse a cpulist string. Returns std::nullopt on malformed input.
/// Whitespace (including the trailing newline sysfs emits) is tolerated.
[[nodiscard]] std::optional<std::vector<int>> parseCpuList(
    std::string_view text);

/// Render a sorted cpu id vector back into compact cpulist form.
[[nodiscard]] std::string formatCpuList(const std::vector<int>& cpus);

}  // namespace dike::oslinux
