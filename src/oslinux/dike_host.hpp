// DikeHost: the real-Linux enforcement backend.
//
// Runs the same Observer -> Selector -> Predictor -> Decider pipeline as the
// simulator backend (src/core), but sources its Observation from live
// /proc and perf counters and enforces decisions with sched_setaffinity —
// the "easy wrapper" deployment the paper released for Linux/x86.
//
// Counter sourcing:
//  * With perf available, per-thread LLC misses/references give the access
//    rate and miss ratio directly (the paper's configuration).
//  * Without perf (containers), utime progress becomes the rate proxy and
//    every thread classifies as compute-intensive: Dike degrades to pure
//    progress equalisation, which is still meaningful on heterogeneous
//    cpus.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <map>
#include <optional>
#include <system_error>
#include <vector>

#include "core/decider.hpp"
#include "core/observer.hpp"
#include "core/predictor.hpp"
#include "core/selector.hpp"
#include "oslinux/host_topology.hpp"
#include "oslinux/perf.hpp"

namespace dike::oslinux {

struct HostConfig {
  core::DikeConfig dike{};
  /// Try to open perf counters per thread (falls back silently if denied).
  bool usePerf = true;
  /// Consecutive failed counter reads before a thread's counters are
  /// dropped and it degrades permanently to the utime-proxy estimate.
  int perfReadFailureLimit = 3;
  /// Restrict scheduling to these cpus (empty = all online cpus).
  std::vector<int> cpus;
};

/// One managed thread's bookkeeping.
struct HostThread {
  pid_t pid = 0;
  pid_t tid = 0;
  int denseId = -1;  ///< id used inside the core pipeline
  int cpu = -1;      ///< cpu the thread is pinned to
  unsigned long long lastUtime = 0;
  bool haveBaseline = false;
  int perfReadFailures = 0;  ///< consecutive failed counter reads
  std::optional<PerfCounter> llcMisses;
  std::optional<PerfCounter> llcRefs;
};

struct HostQuantumReport {
  double unfairness = 0.0;
  int liveThreads = 0;
  int swapsExecuted = 0;
  bool perfActive = false;
};

class DikeHost {
 public:
  explicit DikeHost(HostConfig config = {});

  /// Register a process: all of its current threads become managed.
  [[nodiscard]] std::error_code addProcess(pid_t pid);

  /// Discover topology and pin every managed thread to its own cpu
  /// (round-robin when threads outnumber cpus).
  [[nodiscard]] std::error_code initialize();

  /// One scheduling quantum: sample counters, run the Dike pipeline, and
  /// enforce swaps via affinity. Dead threads are pruned and threads
  /// spawned since the last quantum (e.g. late OpenMP workers) are adopted
  /// and pinned.
  HostQuantumReport runQuantum();

  /// Convenience loop: run quanta of the configured length until the
  /// deadline passes or no managed thread remains.
  void runFor(std::chrono::milliseconds duration);

  [[nodiscard]] int managedThreadCount() const noexcept {
    return static_cast<int>(threads_.size());
  }
  [[nodiscard]] std::int64_t totalSwaps() const noexcept { return swaps_; }
  [[nodiscard]] const core::Observer& observer() const noexcept {
    return observer_;
  }
  [[nodiscard]] const std::vector<int>& cpus() const noexcept { return cpus_; }
  [[nodiscard]] bool perfActive() const noexcept { return perfActive_; }

 private:
  void pruneDeadThreads();
  void adoptNewThreads();
  [[nodiscard]] int leastLoadedCpuIndex() const;
  [[nodiscard]] core::Observation sampleObservation(double periodSeconds);

  HostConfig config_;
  core::Observer observer_;
  core::Selector selector_;
  core::Predictor predictor_;
  core::Decider decider_;
  core::SelectorScratch selectorScratch_;   // arena for formPairsInto
  std::vector<core::ThreadPair> pairs_;     // reused pair buffer

  std::vector<int> cpus_;           // schedulable cpus, dense order
  std::vector<int> cpuSocket_;      // socket per cpus_ index
  std::map<pid_t, HostThread> threads_;
  int nextDenseId_ = 0;
  std::int64_t swaps_ = 0;
  std::int64_t quantumIndex_ = 0;
  bool perfActive_ = false;
  bool initialized_ = false;
  std::chrono::steady_clock::time_point lastSample_{};
};

}  // namespace dike::oslinux
