// perf_event_open wrapper for the hardware counters the paper's Observer
// reads (LLC misses and references per thread). Opening may legitimately
// fail — containers and locked-down hosts deny perf — so construction goes
// through a factory returning std::error_code and callers degrade to the
// /proc-based proxy signals.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <system_error>

namespace dike::oslinux {

enum class PerfEventKind {
  LlcMisses,
  LlcReferences,
  Instructions,
  CpuCycles,
};

/// RAII handle on one perf counter attached to one thread.
class PerfCounter {
 public:
  /// Open a counting (non-sampling) event on `tid` (0 = calling thread).
  [[nodiscard]] static std::optional<PerfCounter> open(PerfEventKind kind,
                                                       pid_t tid,
                                                       std::error_code& ec);

  PerfCounter(PerfCounter&& other) noexcept;
  PerfCounter& operator=(PerfCounter&& other) noexcept;
  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;
  ~PerfCounter();

  /// Current counter value; std::nullopt on read failure.
  [[nodiscard]] std::optional<std::uint64_t> read() const;

  /// Value change since the previous readDelta/read call on this object.
  [[nodiscard]] std::optional<std::uint64_t> readDelta();

  [[nodiscard]] std::error_code reset() const;

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit PerfCounter(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t last_ = 0;
};

/// True if the kernel is likely to permit opening perf counters
/// (perf_event_paranoid <= 2 and the syscall is available).
[[nodiscard]] bool perfLikelyAvailable();

}  // namespace dike::oslinux
