// perf_event_open wrapper for the hardware counters the paper's Observer
// reads (LLC misses and references per thread). Opening may legitimately
// fail — containers and locked-down hosts deny perf — so construction goes
// through a factory returning std::error_code and callers degrade to the
// /proc-based proxy signals.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>

namespace dike::oslinux {

enum class PerfEventKind {
  LlcMisses,
  LlcReferences,
  Instructions,
  CpuCycles,
};

/// Human-readable counter name for error context and logs.
[[nodiscard]] std::string_view toString(PerfEventKind kind) noexcept;

/// RAII handle on one perf counter attached to one thread.
class PerfCounter {
 public:
  /// Open a counting (non-sampling) event on `tid` (0 = calling thread),
  /// optionally restricted to one cpu (-1 = any cpu the thread runs on).
  /// perf_event_open is retried on EINTR before an error is reported.
  [[nodiscard]] static std::optional<PerfCounter> open(PerfEventKind kind,
                                                       pid_t tid,
                                                       std::error_code& ec,
                                                       int cpu = -1);

  PerfCounter(PerfCounter&& other) noexcept;
  PerfCounter& operator=(PerfCounter&& other) noexcept;
  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;
  ~PerfCounter();

  /// Current counter value; std::nullopt on read failure.
  [[nodiscard]] std::optional<std::uint64_t> read() const;

  /// Value change since the previous readDelta/read call on this object.
  [[nodiscard]] std::optional<std::uint64_t> readDelta();

  [[nodiscard]] std::error_code reset() const;

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit PerfCounter(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t last_ = 0;
};

/// True if the kernel is likely to permit opening perf counters
/// (perf_event_paranoid <= 2 and the syscall is available).
[[nodiscard]] bool perfLikelyAvailable();

/// Current /proc/sys/kernel/perf_event_paranoid level, if readable.
[[nodiscard]] std::optional<int> perfParanoidLevel();

/// Actionable description of a perf failure: names the counter, thread, and
/// cpu, and — for permission errors — reports the perf_event_paranoid level
/// with the sysctl that relaxes it, instead of a bare EACCES.
[[nodiscard]] std::string describePerfError(PerfEventKind kind, pid_t tid,
                                            int cpu,
                                            const std::error_code& ec);

}  // namespace dike::oslinux
