// Host CPU topology discovery from sysfs, with an injectable root so tests
// can run against fixture trees. Gives the Linux host driver the same
// socket/physical-core structure the simulator's MachineTopology provides.
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

namespace dike::oslinux {

struct HostCpu {
  int id = -1;
  int package = -1;       ///< physical_package_id (socket)
  int coreId = -1;        ///< core_id within the package
  double maxFreqGhz = 0;  ///< cpufreq/cpuinfo_max_freq, 0 when unavailable
};

struct HostTopology {
  std::vector<HostCpu> cpus;  ///< online cpus, ascending id

  [[nodiscard]] int socketCount() const;
  /// Cpus sharing (package, coreId) with `cpuId` — its SMT siblings,
  /// including itself.
  [[nodiscard]] std::vector<int> smtSiblings(int cpuId) const;
};

/// Read the topology under `root` (default: the live sysfs path). Returns
/// std::nullopt when the tree is unreadable or inconsistent.
[[nodiscard]] std::optional<HostTopology> readHostTopology(
    const std::filesystem::path& root = "/sys/devices/system/cpu");

}  // namespace dike::oslinux
