#include "oslinux/affinity.hpp"

#include <sched.h>

#include <cerrno>

#include "oslinux/retry.hpp"

namespace dike::oslinux {

namespace {

std::error_code lastError() {
  return std::error_code{errno, std::generic_category()};
}

}  // namespace

std::error_code setAffinity(pid_t tid, std::span<const int> cpus) {
  if (cpus.empty())
    return std::make_error_code(std::errc::invalid_argument);
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu < 0 || cpu >= CPU_SETSIZE)
      return std::make_error_code(std::errc::invalid_argument);
    CPU_SET(static_cast<unsigned>(cpu), &set);
  }
  const auto ret =
      retrySyscall([&] { return sched_setaffinity(tid, sizeof set, &set); });
  if (ret != 0) return lastError();
  return {};
}

std::error_code pinToCpu(pid_t tid, int cpu) {
  const int cpus[1] = {cpu};
  return setAffinity(tid, cpus);
}

std::error_code getAffinity(pid_t tid, std::vector<int>& cpus) {
  cpu_set_t set;
  CPU_ZERO(&set);
  const auto ret =
      retrySyscall([&] { return sched_getaffinity(tid, sizeof set, &set); });
  if (ret != 0) return lastError();
  cpus.clear();
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu)
    if (CPU_ISSET(static_cast<unsigned>(cpu), &set)) cpus.push_back(cpu);
  return {};
}

std::error_code swapPinnedCpus(pid_t tidA, pid_t tidB) {
  std::vector<int> cpusA;
  std::vector<int> cpusB;
  if (auto ec = getAffinity(tidA, cpusA)) return ec;
  if (auto ec = getAffinity(tidB, cpusB)) return ec;
  if (cpusA.size() != 1 || cpusB.size() != 1)
    return std::make_error_code(std::errc::invalid_argument);
  if (auto ec = pinToCpu(tidA, cpusB.front())) return ec;
  return pinToCpu(tidB, cpusA.front());
}

}  // namespace dike::oslinux
