// Thin RAII-free wrappers over sched_setaffinity / sched_getaffinity —
// the enforcement mechanism of the paper's Migrator on a live system
// ("the migrator simply manipulates thread-to-core affinity mappings").
// Errors are reported as std::error_code; no exceptions cross the syscall
// boundary.
#pragma once

#include <sys/types.h>

#include <span>
#include <system_error>
#include <vector>

namespace dike::oslinux {

/// Pin `tid` (0 = calling thread) to exactly the given CPUs.
[[nodiscard]] std::error_code setAffinity(pid_t tid, std::span<const int> cpus);

/// Pin `tid` to a single CPU.
[[nodiscard]] std::error_code pinToCpu(pid_t tid, int cpu);

/// Read the affinity mask of `tid` into `cpus` (sorted ascending).
[[nodiscard]] std::error_code getAffinity(pid_t tid, std::vector<int>& cpus);

/// Swap the single-CPU pins of two threads (the Migrator's swap operation:
/// each thread migrates to the core the other occupied). Both threads must
/// currently be pinned to exactly one CPU; returns the first error hit.
[[nodiscard]] std::error_code swapPinnedCpus(pid_t tidA, pid_t tidB);

}  // namespace dike::oslinux
