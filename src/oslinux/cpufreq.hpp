// cpufreq sysfs access: reading (and, with privileges, writing) per-cpu
// frequency policy — how the paper's authors *built* their heterogeneous
// testbed ("we set one socket to the minimum CPU frequency, and on the
// other we enable TurboBoost"). Reads take an injectable root for fixture
// testing, like host_topology.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <system_error>
#include <vector>

namespace dike::oslinux {

struct CpufreqPolicy {
  int cpu = -1;
  std::string governor;      ///< e.g. "performance", "powersave"
  double minFreqGhz = 0.0;   ///< scaling_min_freq
  double maxFreqGhz = 0.0;   ///< scaling_max_freq
  double curFreqGhz = 0.0;   ///< scaling_cur_freq (0 when unreadable)
  double hwMaxFreqGhz = 0.0; ///< cpuinfo_max_freq (0 when unreadable)
};

/// Read one cpu's policy from `root`/cpu<N>/cpufreq. Returns std::nullopt
/// when the directory or its mandatory files are missing (no cpufreq
/// driver, containers).
[[nodiscard]] std::optional<CpufreqPolicy> readCpufreqPolicy(
    int cpu, const std::filesystem::path& root = "/sys/devices/system/cpu");

/// Read policies for all online cpus (skips cpus without cpufreq).
[[nodiscard]] std::vector<CpufreqPolicy> readAllCpufreqPolicies(
    const std::filesystem::path& root = "/sys/devices/system/cpu");

/// Partition cpus into nominally fast and slow halves by scaling_max_freq —
/// how an operator would check a heterogeneous setup like the paper's.
/// Returns {fast, slow}; empty when fewer than two distinct speeds exist.
struct SpeedPartition {
  std::vector<int> fast;
  std::vector<int> slow;
};
[[nodiscard]] SpeedPartition partitionBySpeed(
    const std::vector<CpufreqPolicy>& policies);

/// Write scaling_max_freq for one cpu (requires root; callers must expect
/// and handle EACCES). Frequency in GHz.
[[nodiscard]] std::error_code writeMaxFrequency(
    int cpu, double freqGhz,
    const std::filesystem::path& root = "/sys/devices/system/cpu");

/// writeMaxFrequency with bounded exponential backoff on transient errors
/// (EAGAIN/EBUSY — governors briefly lock the policy file while
/// re-evaluating). Permission errors are returned immediately.
[[nodiscard]] std::error_code writeMaxFrequencyRetrying(
    int cpu, double freqGhz,
    const std::filesystem::path& root = "/sys/devices/system/cpu");

}  // namespace dike::oslinux
