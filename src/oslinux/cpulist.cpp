#include "oslinux/cpulist.hpp"

#include <cctype>
#include <string>

namespace dike::oslinux {

namespace {

void skipSpace(std::string_view& s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
}

std::optional<int> parseInt(std::string_view& s) {
  skipSpace(s);
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s.front())))
    return std::nullopt;
  long value = 0;
  std::size_t used = 0;
  while (used < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[used]))) {
    value = value * 10 + (s[used] - '0');
    if (value > 1'000'000) return std::nullopt;  // implausible cpu id
    ++used;
  }
  s.remove_prefix(used);
  return static_cast<int>(value);
}

}  // namespace

std::optional<std::vector<int>> parseCpuList(std::string_view text) {
  std::vector<int> cpus;
  skipSpace(text);
  if (text.empty()) return cpus;  // empty list is valid (no cpus)
  for (;;) {
    const auto lo = parseInt(text);
    if (!lo) return std::nullopt;
    int hi = *lo;
    skipSpace(text);
    if (!text.empty() && text.front() == '-') {
      text.remove_prefix(1);
      const auto parsed = parseInt(text);
      if (!parsed || *parsed < *lo) return std::nullopt;
      hi = *parsed;
    }
    for (int cpu = *lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
    skipSpace(text);
    if (text.empty()) break;
    if (text.front() != ',') return std::nullopt;
    text.remove_prefix(1);
  }
  return cpus;
}

std::string formatCpuList(const std::vector<int>& cpus) {
  std::string out;
  std::size_t i = 0;
  while (i < cpus.size()) {
    std::size_t j = i;
    while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(cpus[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(cpus[j]);
    }
    i = j + 1;
  }
  return out;
}

}  // namespace dike::oslinux
