#include "oslinux/procstat.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace dike::oslinux {

namespace {

/// Split the remainder (after comm) into whitespace-separated fields.
std::vector<std::string_view> splitFields(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\n') ++j;
    if (j > i) fields.push_back(text.substr(i, j - i));
    i = j + 1;
  }
  return fields;
}

std::optional<unsigned long long> toULL(std::string_view s) {
  if (s.empty()) return std::nullopt;
  unsigned long long value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<unsigned long long>(c - '0');
  }
  return value;
}

std::optional<long long> toLL(std::string_view s) {
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  const auto v = toULL(s);
  if (!v) return std::nullopt;
  const auto signedValue = static_cast<long long>(*v);
  return negative ? -signedValue : signedValue;
}

}  // namespace

std::optional<ProcStat> parseProcStat(std::string_view line) {
  // Format: pid (comm) state ppid ... — comm may contain spaces and parens,
  // so anchor on the *last* closing paren.
  const std::size_t open = line.find('(');
  const std::size_t close = line.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open)
    return std::nullopt;

  ProcStat out;
  const auto pid = toLL(std::string_view{line.substr(0, open > 0 ? open - 1 : 0)});
  if (!pid) return std::nullopt;
  out.pid = static_cast<pid_t>(*pid);
  out.comm = line.substr(open + 1, close - open - 1);

  const std::vector<std::string_view> fields =
      splitFields(line.substr(close + 1));
  // Field indices after comm (0-based): 0=state, 7=minflt, 9=majflt,
  // 11=utime, 12=stime, 36=processor (fields 3..52 of proc(5), shifted by 3).
  if (fields.size() < 37) return std::nullopt;
  if (fields[0].size() != 1) return std::nullopt;
  out.state = fields[0].front();

  const auto minflt = toULL(fields[7]);
  const auto majflt = toULL(fields[9]);
  const auto utime = toULL(fields[11]);
  const auto stime = toULL(fields[12]);
  const auto processor = toLL(fields[36]);
  if (!minflt || !majflt || !utime || !stime || !processor)
    return std::nullopt;
  out.minflt = *minflt;
  out.majflt = *majflt;
  out.utimeTicks = *utime;
  out.stimeTicks = *stime;
  out.processor = static_cast<int>(*processor);
  return out;
}

std::optional<ProcStat> readProcStat(pid_t pid, pid_t tid) {
  std::string path = "/proc/" + std::to_string(pid);
  if (tid != 0) path += "/task/" + std::to_string(tid);
  path += "/stat";

  std::ifstream in{path};
  if (!in) return std::nullopt;
  static thread_local std::string buffer;
  std::getline(in, buffer);
  return parseProcStat(buffer);
}

std::vector<pid_t> listThreads(pid_t pid) {
  std::vector<pid_t> tids;
  const std::filesystem::path dir =
      "/proc/" + std::to_string(pid) + "/task";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{dir, ec}) {
    const std::string name = entry.path().filename().string();
    char* end = nullptr;
    const long tid = std::strtol(name.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && tid > 0)
      tids.push_back(static_cast<pid_t>(tid));
  }
  std::sort(tids.begin(), tids.end());
  return tids;
}

}  // namespace dike::oslinux
