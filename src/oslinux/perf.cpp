#include "oslinux/perf.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "oslinux/retry.hpp"

namespace dike::oslinux {

std::string_view toString(PerfEventKind kind) noexcept {
  switch (kind) {
    case PerfEventKind::LlcMisses: return "llc-misses";
    case PerfEventKind::LlcReferences: return "llc-references";
    case PerfEventKind::Instructions: return "instructions";
    case PerfEventKind::CpuCycles: return "cpu-cycles";
  }
  return "?";
}

namespace {

long perfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int groupFd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, groupFd, flags);
}

void fillAttr(perf_event_attr& attr, PerfEventKind kind) {
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  switch (kind) {
    case PerfEventKind::LlcMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case PerfEventKind::LlcReferences:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
      break;
    case PerfEventKind::Instructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case PerfEventKind::CpuCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
  }
}

}  // namespace

std::optional<PerfCounter> PerfCounter::open(PerfEventKind kind, pid_t tid,
                                             std::error_code& ec, int cpu) {
  perf_event_attr attr;
  fillAttr(attr, kind);
  const long fd = retrySyscall(
      [&] { return perfEventOpen(&attr, tid, cpu, /*groupFd=*/-1, 0); });
  if (fd < 0) {
    ec = std::error_code{errno, std::generic_category()};
    return std::nullopt;
  }
  ec = {};
  return PerfCounter{static_cast<int>(fd)};
}

PerfCounter::PerfCounter(PerfCounter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), last_(other.last_) {}

PerfCounter& PerfCounter::operator=(PerfCounter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    last_ = other.last_;
  }
  return *this;
}

PerfCounter::~PerfCounter() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<std::uint64_t> PerfCounter::read() const {
  std::uint64_t value = 0;
  const auto bytes =
      retrySyscall([&] { return ::read(fd_, &value, sizeof value); });
  if (bytes != static_cast<ssize_t>(sizeof value)) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> PerfCounter::readDelta() {
  const auto current = read();
  if (!current) return std::nullopt;
  const std::uint64_t delta = *current - last_;
  last_ = *current;
  return delta;
}

std::error_code PerfCounter::reset() const {
  const auto ret =
      retrySyscall([&] { return ioctl(fd_, PERF_EVENT_IOC_RESET, 0); });
  if (ret != 0) return std::error_code{errno, std::generic_category()};
  return {};
}

std::optional<int> perfParanoidLevel() {
  std::ifstream in{"/proc/sys/kernel/perf_event_paranoid"};
  if (!in) return std::nullopt;
  int level = 0;
  in >> level;
  if (!in.good() && !in.eof()) return std::nullopt;
  return level;
}

bool perfLikelyAvailable() {
  const auto level = perfParanoidLevel();
  return level.has_value() && *level <= 2;
}

std::string describePerfError(PerfEventKind kind, pid_t tid, int cpu,
                              const std::error_code& ec) {
  std::ostringstream out;
  out << "perf counter '" << toString(kind) << "' (tid " << tid << ", cpu ";
  if (cpu < 0)
    out << "any";
  else
    out << cpu;
  out << "): " << ec.message();
  const bool permission =
      ec == std::error_code{EACCES, std::generic_category()} ||
      ec == std::error_code{EPERM, std::generic_category()};
  if (permission) {
    if (const auto level = perfParanoidLevel(); level.has_value() && *level > 2)
      out << " — kernel.perf_event_paranoid is " << *level
          << ", which blocks unprivileged perf; run `sysctl -w"
             " kernel.perf_event_paranoid=2` (or lower) or grant"
             " CAP_PERFMON";
    else
      out << " — insufficient privilege for this event; grant CAP_PERFMON"
             " or run with elevated privileges";
  }
  return out.str();
}

}  // namespace dike::oslinux
