#include "oslinux/perf.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

namespace dike::oslinux {

namespace {

long perfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int groupFd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, groupFd, flags);
}

void fillAttr(perf_event_attr& attr, PerfEventKind kind) {
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  switch (kind) {
    case PerfEventKind::LlcMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case PerfEventKind::LlcReferences:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
      break;
    case PerfEventKind::Instructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case PerfEventKind::CpuCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
  }
}

}  // namespace

std::optional<PerfCounter> PerfCounter::open(PerfEventKind kind, pid_t tid,
                                             std::error_code& ec) {
  perf_event_attr attr;
  fillAttr(attr, kind);
  const long fd = perfEventOpen(&attr, tid, /*cpu=*/-1, /*groupFd=*/-1, 0);
  if (fd < 0) {
    ec = std::error_code{errno, std::generic_category()};
    return std::nullopt;
  }
  ec = {};
  return PerfCounter{static_cast<int>(fd)};
}

PerfCounter::PerfCounter(PerfCounter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), last_(other.last_) {}

PerfCounter& PerfCounter::operator=(PerfCounter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    last_ = other.last_;
  }
  return *this;
}

PerfCounter::~PerfCounter() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<std::uint64_t> PerfCounter::read() const {
  std::uint64_t value = 0;
  if (::read(fd_, &value, sizeof value) != sizeof value) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> PerfCounter::readDelta() {
  const auto current = read();
  if (!current) return std::nullopt;
  const std::uint64_t delta = *current - last_;
  last_ = *current;
  return delta;
}

std::error_code PerfCounter::reset() const {
  if (ioctl(fd_, PERF_EVENT_IOC_RESET, 0) != 0)
    return std::error_code{errno, std::generic_category()};
  return {};
}

bool perfLikelyAvailable() {
  std::ifstream in{"/proc/sys/kernel/perf_event_paranoid"};
  if (!in) return false;
  int level = 0;
  in >> level;
  return in.good() && level <= 2;
}

}  // namespace dike::oslinux
