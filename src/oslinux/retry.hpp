// EINTR-safe syscall retry with bounded exponential backoff.
//
// Two layers, matching how Linux syscalls actually fail:
//  * retrySyscall(): re-issue immediately while the call returns -1 with
//    EINTR — a signal interrupted it, nothing is wrong, never give up.
//  * retryWithBackoff(): for operations that can fail transiently with a
//    real (but recoverable) error — EAGAIN, EBUSY — retry a bounded number
//    of times, sleeping an exponentially growing, capped interval between
//    attempts so a flapping resource is not hammered.
#pragma once

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <system_error>
#include <thread>
#include <utility>

namespace dike::oslinux {

/// Re-issue `call` (a callable returning a signed syscall result) while it
/// fails with EINTR. Returns the first non-EINTR result.
template <typename Syscall>
[[nodiscard]] auto retrySyscall(Syscall&& call) {
  for (;;) {
    const auto result = call();
    if (result >= 0 || errno != EINTR) return result;
  }
}

struct RetryPolicy {
  int maxAttempts = 5;
  std::chrono::microseconds initialBackoff{100};
  std::chrono::microseconds maxBackoff{10'000};
};

/// Errors worth retrying with backoff: the resource may recover on its own.
/// (EINTR is listed for completeness, but retrySyscall should have absorbed
/// it before an error_code was ever built.)
[[nodiscard]] inline bool isTransientError(const std::error_code& ec) noexcept {
  return ec == std::error_code{EINTR, std::generic_category()} ||
         ec == std::error_code{EAGAIN, std::generic_category()} ||
         ec == std::error_code{EBUSY, std::generic_category()};
}

/// Run `op` (a callable returning std::error_code) until it succeeds, fails
/// with a non-transient error, or exhausts policy.maxAttempts. Sleeps
/// between attempts (initialBackoff, doubled each time, capped at
/// maxBackoff). Returns the last error_code ({} on success).
template <typename Op>
[[nodiscard]] std::error_code retryWithBackoff(Op&& op,
                                               RetryPolicy policy = {}) {
  std::chrono::microseconds backoff = policy.initialBackoff;
  std::error_code ec;
  for (int attempt = 0; attempt < policy.maxAttempts; ++attempt) {
    ec = op();
    if (!ec || !isTransientError(ec)) return ec;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.maxBackoff);
  }
  return ec;
}

}  // namespace dike::oslinux
