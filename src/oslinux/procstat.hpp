// /proc/<pid>/stat and /proc/<pid>/task enumeration: the progress-monitoring
// signals the host driver samples per quantum (utime as a progress proxy,
// majflt as a coarse memory-pressure proxy when perf counters are
// unavailable, and the last-run CPU).
#pragma once

#include <sys/types.h>

#include <optional>
#include <string_view>
#include <vector>

namespace dike::oslinux {

struct ProcStat {
  pid_t pid = 0;
  std::string_view comm{};  ///< points into the parsed buffer; copy to keep
  char state = '?';
  unsigned long long minflt = 0;
  unsigned long long majflt = 0;
  unsigned long long utimeTicks = 0;
  unsigned long long stimeTicks = 0;
  int processor = -1;  ///< CPU the task last ran on
};

/// Parse one /proc/<pid>/stat line. Handles comm fields containing spaces
/// and parentheses (the kernel wraps comm in the outermost parens).
/// Returns std::nullopt for malformed input.
[[nodiscard]] std::optional<ProcStat> parseProcStat(std::string_view line);

/// Read and parse /proc/<pid>/stat (or /proc/<pid>/task/<tid>/stat).
[[nodiscard]] std::optional<ProcStat> readProcStat(pid_t pid,
                                                   pid_t tid = 0);

/// Thread ids of a process, from /proc/<pid>/task.
[[nodiscard]] std::vector<pid_t> listThreads(pid_t pid);

}  // namespace dike::oslinux
